package csm

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"codedsm/internal/field"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

// The consensus fixture: N=4 nodes sized for one real fault with K=2
// degree-1 registers ((K-1)d + 2b + 1 = 4), the smallest shape where
// PBFT (N >= 3b+1) and the erasure threshold (K-1)d+1 = 2 both leave
// room for a dead node.
const (
	consN      = 4
	consK      = 2
	consFaults = 1
	consRounds = 8
	consSeed   = 1711
)

func consTransition(f field.Field[uint64]) (*sm.Transition[uint64], error) {
	return sm.NewPolynomialRegister(f, 1)
}

// consOracleOutputs runs the consensus fixture's workload on the
// simulated Oracle cluster — the deterministic reference every
// consensus mode must reproduce bit-identically.
func consOracleOutputs(t *testing.T, workload [][][]uint64) [][][]uint64 {
	t.Helper()
	c, err := New(Config[uint64]{
		BaseField:     field.NewGoldilocks(),
		NewTransition: consTransition,
		K:             consK,
		N:             consN,
		MaxFaults:     consFaults,
		Mode:          transport.Sync,
		Consensus:     Oracle,
		Seed:          consSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Run(workload)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][]uint64, len(results))
	for r, res := range results {
		if !res.Correct {
			t.Fatalf("oracle round %d not correct", r)
		}
		out[r] = res.Outputs
	}
	return out
}

// consProcess builds one consensus-fixture node over the given link.
func consProcess(t *testing.T, kind ConsensusKind, l transport.Link) *NodeProcess[uint64] {
	t.Helper()
	p, err := NewNodeProcess(RemoteConfig[uint64]{
		BaseField:     field.NewGoldilocks(),
		NewTransition: consTransition,
		K:             consK,
		MaxFaults:     consFaults,
		Consensus:     kind,
	}, l)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRemoteConsensusMatchesOracleOverLocalLinks is the pluggable-
// consensus equivalence contract on the deterministic transport: a
// symmetric RunWorkload cluster deciding every batch with a real BFT
// protocol produces outputs bit-identical to the simulated Oracle
// cluster on the same workload.
func TestRemoteConsensusMatchesOracleOverLocalLinks(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, consRounds, consK, 1, consSeed)
	want := consOracleOutputs(t, workload)
	for _, kind := range []ConsensusKind{DolevStrong, PBFT} {
		for _, batch := range []int{1, 3} {
			net, err := transport.New(transport.Config{N: consN, Mode: transport.Sync, Seed: consSeed})
			if err != nil {
				t.Fatal(err)
			}
			links, err := transport.NewLocalLinks(net)
			if err != nil {
				t.Fatal(err)
			}
			outs := make([][][][]uint64, consN)
			errs := make([]error, consN)
			var wg sync.WaitGroup
			for i, l := range links {
				wg.Add(1)
				go func(i int, l transport.Link) {
					defer wg.Done()
					p := consProcess(t, kind, l)
					outs[i], errs[i] = p.RunWorkload(workload, batch)
				}(i, l)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("%v batch=%d node %d: %v", kind, batch, i, err)
				}
			}
			for i := range outs {
				requireIdentical(t, i, outs[i], want)
			}
		}
	}
}

// tcpConsensusLinks brings up N real TCP links for the consensus
// fixture, with the barrier sized to survive consFaults dead peers.
func tcpConsensusLinks(t *testing.T) []transport.Link {
	t.Helper()
	addrs := make([]string, consN)
	lns := make([]net.Listener, consN)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	links := make([]transport.Link, consN)
	errs := make([]error, consN)
	var wg sync.WaitGroup
	for i := 0; i < consN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tcp, err := transport.NewTCP(transport.TCPConfig{
				Self: transport.NodeID(i), N: consN, Seed: consSeed,
				Listen: addrs[i], Peers: addrs,
				DialTimeout: 20 * time.Second, StepTimeout: 20 * time.Second,
				FailoverQuorum: consN - 1 - consFaults,
				SuspectAfter:   250 * time.Millisecond,
			})
			links[i], errs[i] = tcp, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tcp node %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
	})
	return links
}

// TestRemotePBFTMatchesOracleOverTCP pins the acceptance contract: a
// 4-process-shaped PBFT cluster over real localhost sockets lands
// bit-identical to the in-memory simulated oracle.
func TestRemotePBFTMatchesOracleOverTCP(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, consRounds, consK, 1, consSeed)
	want := consOracleOutputs(t, workload)
	links := tcpConsensusLinks(t)
	outs := make([][][][]uint64, consN)
	errs := make([]error, consN)
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(i int, l transport.Link) {
			defer wg.Done()
			p := consProcess(t, PBFT, l)
			outs[i], errs[i] = p.RunWorkload(workload, 2)
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i := range outs {
		requireIdentical(t, i, outs[i], want)
	}
}

// TestRemotePBFTLeaderFailoverOverTCP is the leader-failover contract:
// the view-0 leader (node 0) dies after a prefix of the workload — its
// link closes mid-run — and the survivors' view change routes
// leadership around it, completes every remaining round, and still
// produces the oracle's outputs bit-identically.
func TestRemotePBFTLeaderFailoverOverTCP(t *testing.T) {
	const killAfter = 3 // rounds the leader completes before dying
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, consRounds, consK, 1, consSeed)
	want := consOracleOutputs(t, workload)
	links := tcpConsensusLinks(t)
	outs := make([][][][]uint64, consN)
	errs := make([]error, consN)
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(i int, l transport.Link) {
			defer wg.Done()
			p := consProcess(t, PBFT, l)
			if i == 0 {
				// The leader executes only a prefix, then drops off the
				// network — the moral equivalent of kill -9 mid-run.
				outs[i], errs[i] = p.RunWorkload(workload[:killAfter], 1)
				l.Close()
				return
			}
			outs[i], errs[i] = p.RunWorkload(workload, 1)
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	requireIdentical(t, 0, outs[0], want[:killAfter])
	for i := 1; i < consN; i++ {
		requireIdentical(t, i, outs[i], want)
	}
}

// TestValidateRemoteConsensus pins the eager typed validation used by
// NewNodeProcess and csmnode bootstrap.
func TestValidateRemoteConsensus(t *testing.T) {
	cases := []struct {
		kind    ConsensusKind
		n, b    int
		wantErr bool
	}{
		{Oracle, 4, 0, false},
		{Oracle, 4, 3, false}, // oracle has no quorum shape of its own
		{DolevStrong, 4, 1, false},
		{DolevStrong, 4, 4, true}, // b >= N
		{DolevStrong, 1, 0, true}, // no peers to relay to
		{PBFT, 4, 1, false},
		{PBFT, 4, 2, true}, // N < 3b+1
		{PBFT, 7, 2, false},
		{ConsensusKind(42), 4, 0, true}, // unknown kind
		{PBFT, 4, -1, true},             // negative budget
	}
	for _, tc := range cases {
		err := ValidateRemoteConsensus(tc.kind, tc.n, tc.b)
		if tc.wantErr && !errors.Is(err, ErrConsensusConfig) {
			t.Errorf("ValidateRemoteConsensus(%v, %d, %d) = %v, want ErrConsensusConfig", tc.kind, tc.n, tc.b, err)
		}
		if !tc.wantErr && err != nil {
			t.Errorf("ValidateRemoteConsensus(%v, %d, %d) = %v, want nil", tc.kind, tc.n, tc.b, err)
		}
	}
}

// TestRemoteConsensusEntryPoints pins that the driver surface matches
// the configured protocol: BFT clusters refuse the sequencer split,
// Oracle clusters refuse RunWorkload.
func TestRemoteConsensusEntryPoints(t *testing.T) {
	net, err := transport.New(transport.Config{N: consN, Mode: transport.Sync, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	links, err := transport.NewLocalLinks(net)
	if err != nil {
		t.Fatal(err)
	}
	bft := consProcess(t, PBFT, links[0])
	if _, err := bft.LeadBatch([][][]uint64{{{1}, {2}}}); !errors.Is(err, ErrConsensusConfig) {
		t.Errorf("LeadBatch under PBFT: %v, want ErrConsensusConfig", err)
	}
	bft1 := consProcess(t, PBFT, links[1])
	if _, _, err := bft1.FollowBatch(); !errors.Is(err, ErrConsensusConfig) {
		t.Errorf("FollowBatch under PBFT: %v, want ErrConsensusConfig", err)
	}
	oracle := consProcess(t, Oracle, links[2])
	if _, err := oracle.RunWorkload(nil, 1); !errors.Is(err, ErrConsensusConfig) {
		t.Errorf("RunWorkload under Oracle: %v, want ErrConsensusConfig", err)
	}
	// A PBFT shape the capacity check admits but the quorum check must
	// reject: K=1 fits N=5 b=2, PBFT needs N >= 7.
	if _, err := NewNodeProcess(RemoteConfig[uint64]{
		BaseField:     field.NewGoldilocks(),
		NewTransition: consTransition,
		K:             consK,
		MaxFaults:     consFaults,
		Consensus:     ConsensusKind(42),
	}, links[3]); !errors.Is(err, ErrConsensusConfig) {
		t.Errorf("NewNodeProcess with unknown kind: %v, want ErrConsensusConfig", err)
	}
}

// TestDurableConsensusProtocolMismatch: a data directory written under
// one protocol must refuse to resume under another, with the typed
// sentinel.
func TestDurableConsensusProtocolMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := openNodeStore(DurabilityConfig{Dir: dir}, PBFT)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.appendApplied(0, []uint64{1, 2}, []byte("digest-state"), [][]uint64{{3}, {4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := openNodeStore(DurabilityConfig{Dir: dir}, Oracle); !errors.Is(err, ErrConsensusMismatch) {
		t.Fatalf("reopen under Oracle: %v, want ErrConsensusMismatch", err)
	}
	// Same protocol resumes fine, at the recorded round.
	s2, err := openNodeStore(DurabilityConfig{Dir: dir}, PBFT)
	if err != nil {
		t.Fatalf("reopen under PBFT: %v", err)
	}
	defer s2.close()
	if s2.round != 1 {
		t.Fatalf("recovered round %d, want 1", s2.round)
	}
}
