// Processes: the multi-process deployment harness. Where every other
// example simulates a whole cluster inside one process, this one runs a
// real N-process cluster over localhost TCP sockets and proves it
// faithful to the simulation:
//
//  1. run the workload on the in-memory simulated cluster (the
//     deterministic oracle) and digest its outputs;
//  2. `csmnode bootstrap` an N-node localhost cluster, start the N
//     csmnode processes, and drive the same workload;
//  3. require the run digest every node prints at exit to be
//     bit-identical to the oracle's.
//
// How step 2 drives the workload depends on -consensus. In the default
// oracle mode node 0 is the sequencer: the harness submits each command
// through its socket ingress and also checks every streamed output
// against the oracle as it arrives. With -consensus dolev-strong or
// pbft there is no sequencer — every node derives the same seeded
// workload and each batch is decided by a real BFT instance over the
// TCP links, so the harness starts all N processes with -rounds and
// compares their exit digests.
//
// -kill-leader (pbft only) additionally crashes node 0 — the view-0
// leader — mid-run via the CSMNODE_CRASH WAL fault-injection hook. The
// surviving three processes must route around it with a PBFT view
// change and still finish with the oracle digest.
//
// Any divergence (or a hung cluster: everything runs under a deadline)
// exits non-zero, which is what `make smoke-processes` and the CI
// multiprocess job assert.
//
//	go build -o bin/csmnode ./cmd/csmnode
//	go run ./examples/processes -csmnode bin/csmnode
//	go run ./examples/processes -csmnode bin/csmnode -consensus pbft -faults 1 -degree 1
//	go run ./examples/processes -csmnode bin/csmnode -consensus pbft -faults 1 -degree 1 -kill-leader
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"codedsm"
	"codedsm/internal/nodeapi"
)

func main() {
	csmnode := flag.String("csmnode", "csmnode", "path to the csmnode binary")
	n := flag.Int("n", 4, "cluster size")
	k := flag.Int("k", 2, "number of state machines")
	degree := flag.Int("degree", 2, "polynomial-register degree")
	faults := flag.Int("faults", 0, "fault budget b the cluster is provisioned for")
	consensus := flag.String("consensus", "oracle", "batch consensus: oracle, dolev-strong, or pbft")
	killLeader := flag.Bool("kill-leader", false, "pbft only: crash node 0 mid-run; survivors must finish via view change")
	rounds := flag.Int("rounds", 8, "workload rounds to submit")
	seed := flag.Uint64("seed", 4242, "workload and cluster seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "deadline for the whole scenario")
	flag.Parse()
	log.SetFlags(0)

	if *killLeader && (*consensus != "pbft" || *faults < 1) {
		log.Fatal("FAIL: -kill-leader needs -consensus pbft and -faults >= 1")
	}
	if *killLeader && *rounds < 6 {
		log.Fatal("FAIL: -kill-leader crashes the leader around round 3; use -rounds >= 6")
	}

	deadline := time.AfterFunc(*timeout, func() {
		log.Fatalf("FAIL: scenario exceeded %v", *timeout)
	})
	defer deadline.Stop()

	gold := codedsm.NewGoldilocks()
	workload := codedsm.RandomWorkload[uint64](gold, *rounds, *k, 1, *seed)

	// 1. The in-memory oracle run.
	oracle, oracleOutputs := oracleDigest(gold, workload, *n, *k, *degree, *seed)
	log.Printf("oracle:   %d rounds on the simulated cluster, digest=%s", *rounds, oracle)

	// 2. Bootstrap the real cluster's config files.
	dir, err := os.MkdirTemp("", "csmnode-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bootArgs := []string{"bootstrap", "-dir", dir,
		"-n", fmt.Sprint(*n), "-k", fmt.Sprint(*k), "-degree", fmt.Sprint(*degree),
		"-faults", fmt.Sprint(*faults), "-seed", fmt.Sprint(*seed)}
	if *consensus != "oracle" {
		bootArgs = append(bootArgs, "-consensus", *consensus)
	} else {
		bootArgs = append(bootArgs, "-serve")
	}
	if *killLeader {
		// The crash hook fires in the WAL layer, so the kill variant
		// needs durable nodes.
		bootArgs = append(bootArgs, "-data-dir", filepath.Join(dir, "data"))
	}
	bootstrap := exec.Command(*csmnode, bootArgs...)
	bootstrap.Stderr = os.Stderr
	if err := bootstrap.Run(); err != nil {
		log.Fatalf("csmnode bootstrap: %v", err)
	}

	if *consensus == "oracle" {
		runIngress(*csmnode, dir, *n, *rounds, workload, oracle, oracleOutputs)
	} else {
		runConsensus(*csmnode, dir, *n, *rounds, *consensus, *killLeader, oracle)
	}
}

// runIngress is the sequencer deployment: node 0 serves the socket
// ingress, the harness submits the workload command by command and
// checks every streamed output against the oracle as it arrives.
func runIngress(csmnode, dir string, n, rounds int, workload [][][]uint64, oracle string, oracleOutputs [][][]uint64) {
	clientAddr := clientListenAddr(filepath.Join(dir, "node0.json"))

	procs := make([]*exec.Cmd, n)
	outputs := make([]*strings.Builder, n)
	for i := range procs {
		args := []string{"run", "-config", filepath.Join(dir, fmt.Sprintf("node%d.json", i))}
		if i == 0 {
			args = append(args, "-serve")
		}
		procs[i] = startNode(csmnode, args, nil, &outputs[i])
	}
	defer killAll(procs)
	log.Printf("cluster:  %d csmnode processes up, ingress at %s", n, clientAddr)

	client, err := nodeapi.Dial(clientAddr, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	for r, cmds := range workload {
		for m, cmd := range cmds {
			if err := client.Submit(m, cmd); err != nil {
				log.Fatalf("submit round %d machine %d: %v", r, m, err)
			}
		}
		for range cmds {
			resp, err := client.ReadResult()
			if err != nil {
				log.Fatalf("reading results of round %d: %v", r, err)
			}
			want := oracleOutputs[resp.Round][resp.Machine]
			if !equalU64(resp.Output, want) {
				log.Fatalf("FAIL: round %d machine %d: cluster output %v, oracle %v",
					resp.Round, resp.Machine, resp.Output, want)
			}
		}
	}
	remoteDigest, err := client.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ingress:  %d rounds submitted over the socket, digest=%s", rounds, remoteDigest)

	// Every process must exit cleanly and print the oracle digest.
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			log.Fatalf("FAIL: node %d exited with %v\n%s", i, err, outputs[i])
		}
	}
	if remoteDigest != oracle {
		log.Fatalf("FAIL: ingress digest %s, oracle %s", remoteDigest, oracle)
	}
	for i := range procs {
		if d := digestLine(outputs[i].String()); d != oracle {
			log.Fatalf("FAIL: node %d digest %s, oracle %s", i, d, oracle)
		}
	}
	log.Printf("PASS: %d processes x %d rounds bit-identical to the in-memory oracle", n, rounds)
}

// runConsensus is the symmetric BFT deployment: every node runs the
// same -rounds seeded workload and each batch is decided by the real
// consensus protocol over the TCP links. With killLeader the harness
// arms a WAL crash hook on node 0 so it dies around round 3 — rounds
// 0-2 prove the view-0 leader path, the rest prove the view change.
func runConsensus(csmnode, dir string, n, rounds int, consensus string, killLeader bool, oracle string) {
	procs := make([]*exec.Cmd, n)
	outputs := make([]*strings.Builder, n)
	for i := range procs {
		args := []string{"run", "-config", filepath.Join(dir, fmt.Sprintf("node%d.json", i)),
			"-rounds", fmt.Sprint(rounds)}
		var env []string
		if killLeader && i == 0 {
			// Durable batch-1 rounds append twice (decided batch, then
			// applied state); the 8th append is mid-round-3, after node 0
			// already served as PBFT leader for three decided batches.
			env = append(os.Environ(), "CSMNODE_CRASH=wal-before-append@8")
		}
		procs[i] = startNode(csmnode, args, env, &outputs[i])
	}
	defer killAll(procs)
	log.Printf("cluster:  %d csmnode processes running %s over TCP", n, consensus)

	for i, p := range procs {
		err := p.Wait()
		if killLeader && i == 0 {
			if err == nil {
				log.Fatalf("FAIL: node 0 survived its injected crash\n%s", outputs[0])
			}
			log.Printf("leader:   node 0 killed by injected WAL crash (%v)", err)
			continue
		}
		if err != nil {
			log.Fatalf("FAIL: node %d exited with %v\n%s", i, err, outputs[i])
		}
		if d := digestLine(outputs[i].String()); d != oracle {
			log.Fatalf("FAIL: node %d digest %s, oracle %s", i, d, oracle)
		}
	}
	if killLeader {
		log.Printf("PASS: %d survivors finished %d rounds via %s view change, bit-identical to the in-memory oracle", n-1, rounds, consensus)
	} else {
		log.Printf("PASS: %d processes x %d rounds of %s bit-identical to the in-memory oracle", n, rounds, consensus)
	}
}

// startNode launches one csmnode process with its stdout captured.
func startNode(csmnode string, args, env []string, out **strings.Builder) *exec.Cmd {
	p := exec.Command(csmnode, args...)
	*out = &strings.Builder{}
	p.Stdout = *out
	p.Stderr = os.Stderr
	p.Env = env
	if err := p.Start(); err != nil {
		log.Fatalf("starting %v: %v", args, err)
	}
	return p
}

func killAll(procs []*exec.Cmd) {
	for _, p := range procs {
		if p.Process != nil {
			p.Process.Kill()
		}
	}
}

// oracleDigest runs the workload on the simulated cluster and returns
// the canonical digest plus the per-round outputs for streaming checks.
func oracleDigest(gold codedsm.Goldilocks, workload [][][]uint64, n, k, degree int, seed uint64) (string, [][][]uint64) {
	cluster, err := codedsm.Open(gold,
		func(f codedsm.Field[uint64]) (*codedsm.Transition[uint64], error) {
			return codedsm.NewPolynomialRegister(f, degree)
		},
		codedsm.WithNodes(n),
		codedsm.WithMachines(k),
		codedsm.WithFaults(0),
		codedsm.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	results, err := cluster.Run(workload)
	if err != nil {
		log.Fatal(err)
	}
	digest := nodeapi.NewDigest()
	outputs := make([][][]uint64, len(results))
	for r, res := range results {
		if !res.Correct {
			log.Fatalf("oracle round %d incorrect", r)
		}
		digest.AddRound(r, res.Outputs)
		outputs[r] = res.Outputs
	}
	return digest.Sum(), outputs
}

// clientListenAddr extracts client_listen from the sequencer's config.
func clientListenAddr(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var cfg struct {
		ClientListen string `json:"client_listen"`
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if cfg.ClientListen == "" {
		log.Fatalf("no client_listen in %s (bootstrap without -serve?)", path)
	}
	return cfg.ClientListen
}

// digestLine extracts the digest=<hex> line a csmnode prints at exit.
func digestLine(out string) string {
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		if d, ok := strings.CutPrefix(sc.Text(), "digest="); ok {
			return d
		}
	}
	return "<no digest line>"
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
