// Package replication implements the paper's baselines (Section 3): full
// replication (every node runs all K machines), partial replication
// (disjoint groups of q = N/K nodes each run one machine), and the random
// allocation variant discussed in Section 7 together with the dynamic
// (post-facto) adversary that defeats it.
//
// The schemes expose the same round interface and operation accounting as
// the CSM engine so the Table 1 harness can compare security β, storage
// efficiency γ, and throughput λ like-for-like. Consensus cost is excluded
// from throughput, as the paper's metric prescribes (Section 2.2), so these
// engines execute rounds computationally: command agreement is an oracle.
package replication

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"codedsm/internal/field"
	"codedsm/internal/pool"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

// Behavior selects a node's failure mode.
type Behavior int

const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// Colluding reports the adversary's agreed-upon wrong output — the
	// worst case for majority voting, since all liars match each other.
	Colluding
	// Crash reports nothing.
	Crash
)

// TransitionFactory mirrors csm.TransitionFactory.
type TransitionFactory[E comparable] func(field.Field[E]) (*sm.Transition[E], error)

// Config configures a replication cluster.
type Config[E comparable] struct {
	// BaseField is the arithmetic field.
	BaseField field.Field[E]
	// NewTransition builds the machines' transition function.
	NewTransition TransitionFactory[E]
	// K machines, N nodes.
	K, N int
	// Mode affects only the security bound formulas ((N-1)/2 vs (N-1)/3).
	Mode transport.Mode
	// Byzantine maps node index to behaviour.
	Byzantine map[int]Behavior
	// InitialStates holds K initial state vectors (nil: zeros).
	InitialStates [][]E
	// Seed drives the adversary's lies.
	Seed uint64
	// Parallelism fans the honest replicas' machine steps across worker
	// goroutines, mirroring csm.Config.Parallelism so Table 1 compares
	// schemes like-for-like at any worker count. Rounds are bit-identical
	// for any value. 1 runs sequentially; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Parallelism int
}

// batchRounds is the shared ExecuteBatch implementation, mirroring
// csm.Cluster.ExecuteBatch so the Table 1 harness drives every scheme
// with the same workload grouping: replication rounds are consensus-free
// (the paper's metric already excludes consensus, Section 2.2), so a
// batch is simply executed in order, with completed results returned
// alongside a mid-batch error.
func batchRounds[E comparable](batch [][][]E, exec func([][]E) (*RoundResult[E], error)) ([]*RoundResult[E], error) {
	out := make([]*RoundResult[E], 0, len(batch))
	for _, cmds := range batch {
		res, err := exec(cmds)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RoundResult reports one replication round.
type RoundResult[E comparable] struct {
	// Outputs[k] is the client-accepted output for machine k, nil if no
	// value reached the acceptance threshold.
	Outputs [][]E
	// Correct is true when every accepted output matches the oracle.
	Correct bool
}

// FullCluster replicates all K machines at all N nodes.
type FullCluster[E comparable] struct {
	cfg      Config[E]
	counting *field.Counting[E]
	replicas [][]*sm.Machine[E] // [node][machine]
	oracle   []*sm.Machine[E]
	rng      *rand.Rand
}

// NewFull builds a full-replication cluster.
func NewFull[E comparable](cfg Config[E]) (*FullCluster[E], error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	counting := field.NewCounting(cfg.BaseField)
	tr, err := cfg.NewTransition(counting)
	if err != nil {
		return nil, err
	}
	oracleTr, err := cfg.NewTransition(cfg.BaseField)
	if err != nil {
		return nil, err
	}
	initial := initialStates(cfg, tr.StateLen())
	c := &FullCluster[E]{
		cfg:      cfg,
		counting: counting,
		replicas: make([][]*sm.Machine[E], cfg.N),
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0xf011)),
	}
	if c.oracle, err = machines(oracleTr, initial); err != nil {
		return nil, err
	}
	for i := range c.replicas {
		if c.replicas[i], err = machines(tr, initial); err != nil {
			return nil, err
		}
	}
	counting.Reset()
	return c, nil
}

// Security returns β_full = (N-1)/2 in synchronous networks and (N-1)/3 in
// partially synchronous ones (Section 3).
func (c *FullCluster[E]) Security() int { return replicaSecurity(c.cfg.N, c.cfg.Mode) }

// StorageEfficiency returns γ_full = 1: each node stores all K states.
func (c *FullCluster[E]) StorageEfficiency() float64 { return 1 }

// OpCounts returns total field operations across all nodes.
func (c *FullCluster[E]) OpCounts() field.OpCounts { return c.counting.Counts() }

// OracleStates returns the ground-truth machine states.
func (c *FullCluster[E]) OracleStates() [][]E { return states(c.oracle) }

// ExecuteRound runs one command per machine at every node and simulates
// client acceptance with the b+1 matching-responses rule, b = Security().
// Honest replicas step in parallel on cfg.Parallelism workers; vote
// casting stays in node order so rounds are deterministic.
func (c *FullCluster[E]) ExecuteRound(cmds [][]E) (*RoundResult[E], error) {
	if len(cmds) != c.cfg.K {
		return nil, fmt.Errorf("replication: %d commands for K=%d", len(cmds), c.cfg.K)
	}
	oracleOut, err := step(c.oracle, cmds)
	if err != nil {
		return nil, err
	}
	// One colluding lie per machine per round.
	lies := lieVectors(c.cfg.BaseField, c.rng, c.cfg.K, len(oracleOut[0]))
	// Compute phase (parallel): honest nodes step all K replicas.
	nodeOuts := make([][][]E, c.cfg.N)
	err = pool.Run(c.cfg.Parallelism, c.cfg.N, func(i int) error {
		switch c.cfg.Byzantine[i] {
		case Crash, Colluding:
			return nil
		}
		outs, serr := step(c.replicas[i], cmds)
		if serr != nil {
			return serr
		}
		nodeOuts[i] = outs
		return nil
	})
	if err != nil {
		return nil, err
	}
	votes := make([]map[string]*vote[E], c.cfg.K)
	for k := range votes {
		votes[k] = make(map[string]*vote[E])
	}
	for i := 0; i < c.cfg.N; i++ {
		switch c.cfg.Byzantine[i] {
		case Crash:
			continue
		case Colluding:
			for k := 0; k < c.cfg.K; k++ {
				castVote(c.cfg.BaseField, votes[k], lies[k])
			}
		default:
			for k := 0; k < c.cfg.K; k++ {
				castVote(c.cfg.BaseField, votes[k], nodeOuts[i][k])
			}
		}
	}
	// A client needs b+1 matching replies where b is the tolerated fault
	// count for the scheme.
	return tally(c.cfg.BaseField, votes, oracleOut, c.Security()+1), nil
}

// ExecuteBatch runs a batch of consecutive rounds (one command set per
// round), mirroring csm.Cluster.ExecuteBatch for like-for-like harnesses.
func (c *FullCluster[E]) ExecuteBatch(batch [][][]E) ([]*RoundResult[E], error) {
	return batchRounds(batch, c.ExecuteRound)
}

// vote groups identical replies.
type vote[E comparable] struct {
	value []E
	count int
}

func castVote[E comparable](f field.Field[E], votes map[string]*vote[E], value []E) {
	key := keyOf(f, value)
	if v, ok := votes[key]; ok {
		v.count++
		return
	}
	votes[key] = &vote[E]{value: append([]E(nil), value...), count: 1}
}

func keyOf[E comparable](f field.Field[E], vec []E) string {
	out := make([]uint64, len(vec))
	for i, e := range vec {
		out[i] = f.Uint64(e)
	}
	return fmt.Sprint(out)
}

func tally[E comparable](f field.Field[E], votes []map[string]*vote[E], oracleOut [][]E, threshold int) *RoundResult[E] {
	res := &RoundResult[E]{Outputs: make([][]E, len(votes)), Correct: true}
	for k, byValue := range votes {
		best := 0
		for _, v := range byValue {
			if v.count >= threshold && v.count > best {
				best = v.count
				res.Outputs[k] = v.value
			}
		}
		if res.Outputs[k] == nil || !field.VecEqual(f, res.Outputs[k], oracleOut[k]) {
			res.Correct = false
		}
	}
	return res
}

// --- shared helpers ---

var errConfig = errors.New("replication: invalid configuration")

func validate[E comparable](cfg *Config[E]) error {
	if cfg.BaseField == nil || cfg.NewTransition == nil {
		return fmt.Errorf("%w: BaseField and NewTransition required", errConfig)
	}
	if cfg.K < 1 || cfg.N < cfg.K {
		return fmt.Errorf("%w: need 1 <= K <= N (K=%d N=%d)", errConfig, cfg.K, cfg.N)
	}
	return nil
}

func initialStates[E comparable](cfg Config[E], stateLen int) [][]E {
	if cfg.InitialStates != nil {
		return cfg.InitialStates
	}
	out := make([][]E, cfg.K)
	for k := range out {
		out[k] = field.ZeroVec(cfg.BaseField, stateLen)
	}
	return out
}

func machines[E comparable](tr *sm.Transition[E], initial [][]E) ([]*sm.Machine[E], error) {
	out := make([]*sm.Machine[E], len(initial))
	for k, st := range initial {
		m, err := sm.NewMachine(tr, st)
		if err != nil {
			return nil, err
		}
		out[k] = m
	}
	return out, nil
}

func step[E comparable](ms []*sm.Machine[E], cmds [][]E) ([][]E, error) {
	out := make([][]E, len(ms))
	for k, m := range ms {
		o, err := m.Step(cmds[k])
		if err != nil {
			return nil, err
		}
		out[k] = o
	}
	return out, nil
}

func states[E comparable](ms []*sm.Machine[E]) [][]E {
	out := make([][]E, len(ms))
	for k, m := range ms {
		out[k] = m.State()
	}
	return out
}

func lieVectors[E comparable](f field.Field[E], rng *rand.Rand, k, l int) [][]E {
	out := make([][]E, k)
	for i := range out {
		out[i] = field.RandVec(f, rng, l)
	}
	return out
}

func replicaSecurity(n int, mode transport.Mode) int {
	if mode == transport.PartialSync {
		return (n - 1) / 3
	}
	return (n - 1) / 2
}
