package mvpoly

import (
	randv1 "math/rand"
	randv2 "math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"codedsm/internal/field"
)

func genMvPoly(r *randv2.Rand, nvars, maxDeg, maxTerms int) Poly[uint64] {
	nTerms := 1 + int(r.Uint64N(uint64(maxTerms)))
	terms := make([]Term[uint64], 0, nTerms)
	for i := 0; i < nTerms; i++ {
		exps := make([]int, nvars)
		budget := int(r.Uint64N(uint64(maxDeg + 1)))
		for j := 0; j < budget; j++ {
			exps[r.Uint64N(uint64(nvars))]++
		}
		terms = append(terms, Term[uint64]{Coeff: gold.Rand(r), Exps: exps})
	}
	p, err := FromTerms(gold, nvars, terms)
	if err != nil {
		panic(err)
	}
	return p
}

func mvQuickConfig(nvars int) *quick.Config {
	return &quick.Config{
		MaxCount: 80,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			for i := range args {
				args[i] = reflect.ValueOf(genMvPoly(r, nvars, 4, 6))
			}
		},
	}
}

// TestQuickMvEvalHomomorphism: evaluation commutes with ring operations at
// random points — the exact property Coded Execution relies on (a
// polynomial of coded inputs is the coded polynomial of inputs).
func TestQuickMvEvalHomomorphism(t *testing.T) {
	const nvars = 3
	pt := []uint64{1234567, 7654321, 42}
	if err := quick.Check(func(p, q Poly[uint64]) bool {
		sum, err := p.Add(gold, q)
		if err != nil {
			return false
		}
		prod, err := p.Mul(gold, q)
		if err != nil {
			return false
		}
		pv, err1 := p.Eval(gold, pt)
		qv, err2 := q.Eval(gold, pt)
		sv, err3 := sum.Eval(gold, pt)
		mv, err4 := prod.Eval(gold, pt)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return gold.Equal(sv, gold.Add(pv, qv)) && gold.Equal(mv, gold.Mul(pv, qv))
	}, mvQuickConfig(nvars)); err != nil {
		t.Error(err)
	}
}

// TestQuickMvDegreeBounds: deg(p*q) <= deg p + deg q (with equality over an
// integral domain unless cancellation) and deg(p+q) <= max.
func TestQuickMvDegreeBounds(t *testing.T) {
	if err := quick.Check(func(p, q Poly[uint64]) bool {
		prod, err := p.Mul(gold, q)
		if err != nil {
			return false
		}
		sum, err := p.Add(gold, q)
		if err != nil {
			return false
		}
		dp, dq := p.TotalDegree(), q.TotalDegree()
		if p.IsZero() || q.IsZero() {
			if !prod.IsZero() {
				return false
			}
		} else if prod.TotalDegree() != dp+dq {
			// GF(p) is an integral domain: leading terms cannot cancel
			// unless distinct monomials collide; they can, so <= only.
			if prod.TotalDegree() > dp+dq {
				return false
			}
		}
		maxD := dp
		if dq > maxD {
			maxD = dq
		}
		return sum.TotalDegree() <= maxD
	}, mvQuickConfig(2)); err != nil {
		t.Error(err)
	}
}

// TestQuickParseFormatRoundTrip: Format output re-parses to the same
// polynomial.
func TestQuickParseFormatRoundTrip(t *testing.T) {
	vars := []string{"a", "b", "c"}
	cfg := mvQuickConfig(3)
	if err := quick.Check(func(p Poly[uint64]) bool {
		text := p.Format(gold, vars)
		q, err := Parse[uint64](gold, text, vars)
		if err != nil {
			return false
		}
		return p.Equal(gold, q)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickLinearityOnCodedInputs is the d=1 coded-execution property over
// random linear polynomials: f(Σ c_i v_i) = Σ c_i f(v_i) when Σ c_i = 1.
func TestQuickLinearityOnCodedInputs(t *testing.T) {
	gl := field.NewGoldilocks()
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			// Random degree-1 polynomial in 2 vars.
			terms := []Term[uint64]{
				{Coeff: gl.Rand(r), Exps: []int{0, 0}},
				{Coeff: gl.Rand(r), Exps: []int{1, 0}},
				{Coeff: gl.Rand(r), Exps: []int{0, 1}},
			}
			p, err := FromTerms(gl, 2, terms)
			if err != nil {
				panic(err)
			}
			args[0] = reflect.ValueOf(p)
			args[1] = reflect.ValueOf([4]uint64{gl.Rand(r), gl.Rand(r), gl.Rand(r), gl.Rand(r)})
			args[2] = reflect.ValueOf(gl.Rand(r))
		},
	}
	if err := quick.Check(func(p Poly[uint64], pts [4]uint64, c1 uint64) bool {
		c2 := gl.Sub(gl.One(), c1) // coefficients sum to one
		codedS := gl.Add(gl.Mul(c1, pts[0]), gl.Mul(c2, pts[1]))
		codedX := gl.Add(gl.Mul(c1, pts[2]), gl.Mul(c2, pts[3]))
		fv, err := p.Eval(gl, []uint64{codedS, codedX})
		if err != nil {
			return false
		}
		f1, err1 := p.Eval(gl, []uint64{pts[0], pts[2]})
		f2, err2 := p.Eval(gl, []uint64{pts[1], pts[3]})
		if err1 != nil || err2 != nil {
			return false
		}
		return gl.Equal(fv, gl.Add(gl.Mul(c1, f1), gl.Mul(c2, f2)))
	}, cfg); err != nil {
		t.Error(err)
	}
}
