// Package transport simulates the paper's network model (Section 2.1): a
// fully connected network of N nodes exchanging cryptographically signed
// messages, in either a synchronous mode (every message sent in round t is
// delivered at round t+1) or a partially synchronous mode (adversarially
// delayed deliveries until an unknown global stabilization time, after
// which the network is synchronous).
//
// The simulator is deterministic: a seeded RNG drives pre-GST delays, and
// all nodes run in lock step, which makes the threshold experiments of
// Table 2 exactly reproducible. Messages are signed with ed25519
// ("authenticated Byzantine faults": arbitrary misbehaviour, but forging
// another node's messages is detectable and dropped).
package transport

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
)

// ErrSimulationOnly is returned by non-simulated transports (the TCP
// transport of this package) for knobs that only make sense on the
// deterministic in-memory oracle: crash injection (SetDown), adversarial
// delay models (DelayFn / MaxPreGSTDelay), and broadcast-channel
// equivocation coercion (NoEquivocation). A production transport cannot
// silently no-op these — a test harness that "crashed" a node over TCP and
// got no error would be reasoning about a fault that never happened — so
// every such call fails with an error wrapping this sentinel.
var ErrSimulationOnly = errors.New("transport: knob is supported only by the simulated in-memory transport")

// NodeID identifies a node, 0..N-1.
type NodeID int

// Mode selects the timing model.
type Mode int

const (
	// Sync is the synchronous network: fixed one-round delivery latency.
	Sync Mode = iota
	// PartialSync delivers with adversarial delays before GST and one-round
	// latency afterwards.
	PartialSync
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Sync:
		return "synchronous"
	case PartialSync:
		return "partially-synchronous"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Message is a signed protocol message.
type Message struct {
	From    NodeID
	To      NodeID
	Round   int // the round in which it was sent
	Kind    string
	Payload []byte
	Sig     []byte
}

// Config configures a simulated network.
type Config struct {
	// N is the number of nodes.
	N int
	// Mode selects synchronous or partially synchronous timing.
	Mode Mode
	// GST is the global stabilization round (PartialSync only): messages
	// sent at round >= GST are delivered with one-round latency.
	GST int
	// MaxPreGSTDelay bounds the extra adversarial delay (in rounds) applied
	// to messages sent before GST. Defaults to 3 when zero.
	MaxPreGSTDelay int
	// NoEquivocation models a broadcast (physical-radio-like) network: the
	// first payload a node emits for a given (round, kind) is the one every
	// recipient sees, so Byzantine nodes cannot send conflicting values.
	// INTERMIX requires this assumption (Section 6).
	NoEquivocation bool
	// Seed drives delays and key generation deterministically.
	Seed uint64
	// DelayFn optionally overrides the pre-GST delay for a message; it
	// must return a value in [1, MaxPreGSTDelay+1]. Used by adversarial
	// scheduling tests.
	DelayFn func(from, to NodeID, round int) int
}

// Stats aggregates network-level counters.
type Stats struct {
	MessagesDelivered uint64
	BytesDelivered    uint64
	ForgeriesDropped  uint64
	// RandomDelays counts pre-GST deliveries scheduled by the seeded RNG.
	// It stays zero while a DelayFn is installed: the RNG is consumed only
	// on the random-delay path, so installing or removing a DelayFn never
	// shifts the delays of messages that do not go through it.
	RandomDelays uint64
	// DroppedDown counts messages dropped because the sender or recipient
	// was marked down (crashed) at send or delivery time.
	DroppedDown uint64
}

// Network is a deterministic lock-step message-passing simulator.
type Network struct {
	mu        sync.Mutex
	cfg       Config
	round     int
	rng       *rand.Rand
	pubs      []ed25519.PublicKey
	privs     []ed25519.PrivateKey
	pending   map[int][]Message // delivery round -> messages
	inboxes   [][]Message       // per node, messages deliverable this round
	firstSent map[equivKey][]byte
	down      []bool // crashed nodes: their traffic drops in both directions
	stats     Stats
}

type equivKey struct {
	from  NodeID
	round int
	kind  string
}

// New constructs a network of cfg.N nodes with deterministic keys.
func New(cfg Config) (*Network, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("transport: need at least one node, got %d", cfg.N)
	}
	if cfg.MaxPreGSTDelay == 0 {
		cfg.MaxPreGSTDelay = 3
	}
	if cfg.MaxPreGSTDelay < 0 {
		return nil, fmt.Errorf("transport: negative MaxPreGSTDelay %d", cfg.MaxPreGSTDelay)
	}
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, 0x5eed)),
		pending:   make(map[int][]Message),
		inboxes:   make([][]Message, cfg.N),
		firstSent: make(map[equivKey][]byte),
		down:      make([]bool, cfg.N),
	}
	n.pubs, n.privs = DeriveKeys(cfg.Seed, cfg.N)
	return n, nil
}

// DeriveKeys deterministically derives the cluster's N ed25519 keypairs
// from the shared cluster seed. Both the simulated network and the TCP
// transport use this derivation, so a message signed by node i in one
// process verifies against the keys any other process derived from the
// same seed. (A deployment with real key distribution would instead load
// per-node private keys and a public-key roster from configuration; the
// shared-seed scheme keeps the two transports interchangeable and the
// multi-process runs reproducible.)
func DeriveKeys(clusterSeed uint64, n int) ([]ed25519.PublicKey, []ed25519.PrivateKey) {
	pubs := make([]ed25519.PublicKey, n)
	privs := make([]ed25519.PrivateKey, n)
	for i := 0; i < n; i++ {
		seed := make([]byte, ed25519.SeedSize)
		binary.LittleEndian.PutUint64(seed, clusterSeed^uint64(i)+0x9e3779b97f4a7c15)
		binary.LittleEndian.PutUint64(seed[8:], uint64(i)*0xbf58476d1ce4e5b9+1)
		priv := ed25519.NewKeyFromSeed(seed)
		privs[i] = priv
		pubs[i] = priv.Public().(ed25519.PublicKey)
	}
	return pubs, privs
}

// N returns the number of nodes.
func (n *Network) N() int { return n.cfg.N }

// Mode returns the timing model.
func (n *Network) Mode() Mode { return n.cfg.Mode }

// Round returns the current round index.
func (n *Network) Round() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.round
}

// Stats returns a snapshot of delivery counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// DelayDeterministic reports whether a message enqueued at the given send
// round is scheduled independently of enqueue order: synchronous networks
// and post-GST sends, whose delivery is fixed one-round latency. When it
// returns true, callers may sign and enqueue a round's messages
// concurrently without perturbing determinism. Pre-GST sends do not
// qualify: random delays draw from the sequential seeded RNG stream, and
// an installed DelayFn — whose contract does not require purity — must
// likewise observe sends in program order.
func (n *Network) DelayDeterministic(round int) bool {
	return n.cfg.Mode == Sync || round >= n.cfg.GST
}

// SetDown marks a node as crashed (down=true) or back up (down=false).
// It is a simulation-only knob — fault injection on the deterministic
// oracle. The TCP transport's SetDown fails with ErrSimulationOnly
// instead: over real sockets a crash is something that happens to a
// process, not something a peer declares.
// While a node is down, messages from it or to it are dropped at enqueue
// time — before any delay randomness is drawn, so the seeded delay stream
// of the surviving nodes is unaffected and runs stay reproducible for a
// given seed and crash schedule. Messages already in flight toward a node
// when it goes down are dropped at delivery time instead (they were sent
// while it was alive, but there is no one left to receive them).
func (n *Network) SetDown(id NodeID, down bool) error {
	if int(id) < 0 || int(id) >= n.cfg.N {
		return fmt.Errorf("transport: node %d out of range", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = down
	return nil
}

// isDown is the lock-held down lookup, safe for the untrusted ids Inject
// may carry (out-of-range ids are not down; Verify rejects them later).
func (n *Network) isDown(id NodeID) bool {
	return int(id) >= 0 && int(id) < n.cfg.N && n.down[id]
}

// Down reports whether a node is currently marked down.
func (n *Network) Down(id NodeID) bool {
	if int(id) < 0 || int(id) >= n.cfg.N {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[id]
}

// PublicKey returns node id's verification key.
func (n *Network) PublicKey(id NodeID) (ed25519.PublicKey, error) {
	if int(id) < 0 || int(id) >= n.cfg.N {
		return nil, fmt.Errorf("transport: node %d out of range", id)
	}
	return n.pubs[id], nil
}

// Endpoint returns the send/receive interface for a node.
func (n *Network) Endpoint(id NodeID) (*Endpoint, error) {
	if int(id) < 0 || int(id) >= n.cfg.N {
		return nil, fmt.Errorf("transport: node %d out of range", id)
	}
	return &Endpoint{net: n, id: id}, nil
}

// signingBytes is the canonical byte string covered by a signature.
func signingBytes(from NodeID, round int, kind string, payload []byte) []byte {
	var buf bytes.Buffer
	var hdr [20]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(from))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(round))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(kind)))
	buf.Write(hdr[:])
	buf.WriteString(kind)
	buf.Write(payload)
	return buf.Bytes()
}

// Verify checks a message's signature against its claimed sender.
func (n *Network) Verify(m Message) bool {
	if int(m.From) < 0 || int(m.From) >= n.cfg.N {
		return false
	}
	return ed25519.Verify(n.pubs[m.From], signingBytes(m.From, m.Round, m.Kind, m.Payload), m.Sig)
}

// enqueue schedules a signed message for delivery; it drops forgeries.
// trusted marks messages constructed and signed by an Endpoint in this
// process — their signatures are valid by construction (an endpoint signs
// with its own key over exactly the bytes it enqueues), so re-verifying
// each copy would only burn a redundant ed25519 verification per recipient.
// Messages entering through Inject are never trusted. Callers hold no lock.
func (n *Network) enqueue(m Message, trusted bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Crashed endpoints neither send nor receive. The check precedes the
	// delay draw so a down node's (non-)traffic never consumes the seeded
	// RNG stream of the surviving nodes.
	if n.isDown(m.From) || n.isDown(m.To) {
		n.stats.DroppedDown++
		return
	}
	if !trusted && !n.Verify(m) {
		n.stats.ForgeriesDropped++
		return
	}
	if n.cfg.NoEquivocation {
		key := equivKey{from: m.From, round: m.Round, kind: m.Kind}
		if first, ok := n.firstSent[key]; ok {
			// The broadcast channel carries one value per (sender, round,
			// kind): everyone hears the first one. Re-sign as the sender so
			// the coerced copy still verifies.
			if !bytes.Equal(first, m.Payload) {
				m.Payload = append([]byte(nil), first...)
				m.Sig = ed25519.Sign(n.privs[m.From], signingBytes(m.From, m.Round, m.Kind, m.Payload))
			}
		} else {
			n.firstSent[key] = append([]byte(nil), m.Payload...)
		}
	}
	delivery := n.deliveryRound(m)
	n.pending[delivery] = append(n.pending[delivery], m)
}

// deliveryRound computes when a message sent now arrives. Caller holds mu.
// The seeded RNG is consumed only on the random-delay path: when a DelayFn
// is installed it fully determines the pre-GST schedule and the RNG state
// is left untouched, so the same seed produces the same random delays
// whether or not other runs used a DelayFn.
func (n *Network) deliveryRound(m Message) int {
	if n.cfg.Mode == Sync || m.Round >= n.cfg.GST {
		return m.Round + 1
	}
	var delay int
	if n.cfg.DelayFn != nil {
		delay = n.cfg.DelayFn(m.From, m.To, m.Round)
		if delay < 1 {
			delay = 1
		}
	} else {
		delay = 1 + n.rng.IntN(n.cfg.MaxPreGSTDelay+1)
		n.stats.RandomDelays++
	}
	return m.Round + delay
}

// Step advances the network one round, moving due messages into inboxes.
func (n *Network) Step() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.round++
	for i := range n.inboxes {
		n.inboxes[i] = nil
	}
	due := n.pending[n.round]
	delete(n.pending, n.round)
	// Deterministic delivery order: by sender, then recipient, then kind.
	sort.SliceStable(due, func(i, j int) bool {
		if due[i].From != due[j].From {
			return due[i].From < due[j].From
		}
		if due[i].To != due[j].To {
			return due[i].To < due[j].To
		}
		return due[i].Kind < due[j].Kind
	})
	for _, m := range due {
		if n.down[m.To] {
			// In flight when the recipient crashed: dropped on delivery.
			n.stats.DroppedDown++
			continue
		}
		n.inboxes[m.To] = append(n.inboxes[m.To], m)
		n.stats.MessagesDelivered++
		n.stats.BytesDelivered += uint64(len(m.Payload))
	}
}

// Inject delivers a raw message envelope (used by adversarial tests to
// attempt forgery); it is dropped unless the signature verifies against the
// claimed sender.
func (n *Network) Inject(m Message) { n.enqueue(m, false) }

// Endpoint is a node's handle on the network.
type Endpoint struct {
	net *Network
	id  NodeID
}

// ID returns the node's identifier.
func (e *Endpoint) ID() NodeID { return e.id }

// sign produces the node's signature for the given content.
func (e *Endpoint) sign(round int, kind string, payload []byte) []byte {
	return ed25519.Sign(e.net.privs[e.id], signingBytes(e.id, round, kind, payload))
}

// Send transmits a signed message to a single node.
func (e *Endpoint) Send(to NodeID, kind string, payload []byte) error {
	if int(to) < 0 || int(to) >= e.net.cfg.N {
		return fmt.Errorf("transport: recipient %d out of range", to)
	}
	round := e.net.Round()
	e.net.enqueue(Message{
		From: e.id, To: to, Round: round, Kind: kind,
		Payload: append([]byte(nil), payload...),
		Sig:     e.sign(round, kind, payload),
	}, true)
	return nil
}

// Broadcast transmits a signed message to every other node. The signature
// covers (sender, round, kind, payload) but not the recipient, so one
// ed25519 signature is computed and shared by all N-1 copies — the
// authenticated-broadcast cost model of Section 2.1, not N-1 times it.
func (e *Endpoint) Broadcast(kind string, payload []byte) error {
	round := e.net.Round()
	body := append([]byte(nil), payload...)
	sig := e.sign(round, kind, payload)
	for to := 0; to < e.net.cfg.N; to++ {
		if NodeID(to) == e.id {
			continue
		}
		e.net.enqueue(Message{
			From: e.id, To: NodeID(to), Round: round, Kind: kind,
			Payload: body,
			Sig:     sig,
		}, true)
	}
	return nil
}

// SignBlob signs arbitrary protocol content under a domain-separation
// context (used for Dolev-Strong signature chains, which must survive
// re-broadcast by other nodes).
func (e *Endpoint) SignBlob(context string, data []byte) []byte {
	return ed25519.Sign(e.net.privs[e.id], blobBytes(context, data))
}

// VerifyBlob verifies a blob signature produced by SignBlob.
func (n *Network) VerifyBlob(id NodeID, context string, data, sig []byte) bool {
	if int(id) < 0 || int(id) >= n.cfg.N {
		return false
	}
	return ed25519.Verify(n.pubs[id], blobBytes(context, data), sig)
}

func blobBytes(context string, data []byte) []byte {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(context)))
	buf.Write(hdr[:])
	buf.WriteString(context)
	buf.Write(data)
	return buf.Bytes()
}

// Receive returns the messages delivered to this node in the current round.
func (e *Endpoint) Receive() []Message {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	msgs := e.net.inboxes[e.id]
	out := make([]Message, len(msgs))
	copy(out, msgs)
	return out
}
