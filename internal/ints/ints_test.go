package ints

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	for _, tc := range []struct {
		in   map[int]bool
		want []int
	}{
		{nil, []int{}},
		{map[int]bool{}, []int{}},
		{map[int]bool{3: true}, []int{3}},
		{map[int]bool{5: true, 1: true, 9: true, 0: true, -2: true}, []int{-2, 0, 1, 5, 9}},
	} {
		if got := SortedKeys(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SortedKeys(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
