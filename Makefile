# Single source of truth for the commands CI and humans run.
GO ?= go

# Benchmarks recorded by bench-json: the cluster rounds the acceptance
# criteria track plus the kernel-level micro-benchmarks.
BENCH_JSON_PATTERN = BenchmarkClusterRoundParallel|BenchmarkLCCEncode|BenchmarkLCCDecode|BenchmarkFieldKernels
# Optional: BASELINE=<old bench text> embeds a before/after comparison.
BASELINE ?=

.PHONY: all build test race bench bench-json bench-micro fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, no test re-run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Kernel micro-benchmark smoke run (encode/decode and field kernels).
bench-micro:
	$(GO) test -bench='BenchmarkLCCEncode|BenchmarkLCCDecode' -benchtime=1x -run='^$$' ./internal/lcc/
	$(GO) test -bench='BenchmarkFieldKernels' -benchtime=1x -run='^$$' ./internal/field/

# Machine-readable benchmark baseline: runs the tracked benchmarks and
# writes BENCH_PR2.json (name, ns/op, B/op, allocs/op). Set BASELINE to a
# previous raw `go test -bench` text file to embed a before/after section.
bench-json:
	$(GO) test -bench='$(BENCH_JSON_PATTERN)' -benchmem -benchtime=3x -run='^$$' . ./internal/lcc/ ./internal/field/ > bench-current.txt
	$(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) -note "cluster rounds + coding kernels, benchtime=3x" < bench-current.txt > BENCH_PR2.json
	@rm -f bench-current.txt
	@echo wrote BENCH_PR2.json

fmt:
	gofmt -w .

# Fails (and lists the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench bench-micro
