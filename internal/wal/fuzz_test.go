package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// encRecord builds a correctly framed record for seeding the fuzzer.
func encRecord(typ byte, payload []byte) []byte {
	body := append([]byte{typ}, payload...)
	buf := make([]byte, recordHdrLen, recordHdrLen+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(body, castagnoli))
	return append(buf, body...)
}

// FuzzWALReader throws arbitrary bytes at the segment scanner. The
// scanner must never panic, must never report an end offset beyond the
// input, and must be idempotent: re-scanning the valid prefix it
// reports yields the same records and the same offset. This is the
// property crash recovery leans on — whatever a torn write leaves on
// disk, Open(path) lands on a stable prefix.
func FuzzWALReader(f *testing.F) {
	rec1 := encRecord(1, []byte("alpha"))
	rec2 := encRecord(2, bytes.Repeat([]byte{0xCD}, 100))

	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add(append(append([]byte{}, Magic[:]...), rec1...))
	two := append(append(append([]byte{}, Magic[:]...), rec1...), rec2...)
	f.Add(two)
	f.Add(two[:len(two)-7]) // torn tail
	bad := append([]byte{}, two...)
	bad[len(bad)-1] ^= 0xFF // CRC mismatch in last record
	f.Add(bad)
	huge := append([]byte{}, Magic[:]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0) // implausible length
	f.Add(huge)
	f.Add([]byte("not a wal segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		end, err := Scan(bytes.NewReader(data), func(r Record) error {
			recs = append(recs, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil {
			if errors.Is(err, ErrBadHeader) {
				return
			}
			t.Fatalf("Scan returned unexpected error: %v", err)
		}
		if end < headerLen || end > int64(len(data)) {
			t.Fatalf("Scan end offset %d out of range [%d, %d]", end, headerLen, len(data))
		}
		var recs2 []Record
		end2, err := Scan(bytes.NewReader(data[:end]), func(r Record) error {
			recs2 = append(recs2, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil {
			t.Fatalf("re-scan of valid prefix errored: %v", err)
		}
		if end2 != end {
			t.Fatalf("re-scan end %d != first end %d", end2, end)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-scan found %d records, first scan %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].Type != recs2[i].Type || !bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("record %d differs between scans", i)
			}
		}
	})
}
