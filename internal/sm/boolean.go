package sm

import (
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/mvpoly"
)

// maxBooleanInputs bounds the truth-table construction: the Appendix A
// polynomial can have up to 2^(n-1) terms, so n is kept small.
const maxBooleanInputs = 12

// BoolFunc computes one round of a Boolean machine: given stateBits bits of
// state (packed little-endian into a uint64) and cmdBits bits of command,
// it returns the next state bits and the output bits.
type BoolFunc func(state, cmd uint64) (next, out uint64)

// NewBoolean implements Appendix A: it converts an arbitrary Boolean
// transition function into a multivariate polynomial machine over GF(2^m),
// so that CSM can execute it on coded states. The construction follows
// [Zou, Theorem 2] as restated in the paper: for each output bit, the
// polynomial is sum over satisfying assignments a of prod_i z_i with
// z_i = x_i when a_i = 1 and z_i = x_i + 1 when a_i = 0; each state and
// command bit is embedded into GF(2^m) by equation (13).
//
// The resulting polynomials have total degree at most n = stateBits+cmdBits
// (the "degree <= n" bound of Section 4), and n is limited to 12 to keep
// the 2^n-term expansion tractable.
//
// The field must satisfy 2^m >= N + K for the Lagrange coding points to
// exist; that check happens when the lcc.Code is constructed.
func NewBoolean(f field.Field[uint64], name string, stateBits, cmdBits, outBits int, fn BoolFunc) (*Transition[uint64], error) {
	if stateBits < 1 || cmdBits < 1 || outBits < 1 {
		return nil, fmt.Errorf("sm: boolean machine needs positive bit widths (got %d, %d, %d)",
			stateBits, cmdBits, outBits)
	}
	n := stateBits + cmdBits
	if n > maxBooleanInputs {
		return nil, fmt.Errorf("sm: boolean machine with %d input bits exceeds limit %d (2^n-term expansion)",
			n, maxBooleanInputs)
	}
	bitPoly := func(selector func(next, out uint64) uint8) (mvpoly.Poly[uint64], error) {
		acc := mvpoly.Zero[uint64](n)
		for a := uint64(0); a < 1<<n; a++ {
			state := a & ((1 << stateBits) - 1)
			cmd := a >> stateBits
			next, out := fn(state, cmd)
			if selector(next, out) == 0 {
				continue
			}
			// h_a = prod_i z_i with z_i = x_i if a_i=1 else x_i + 1.
			h := mvpoly.Constant[uint64](f, n, f.One())
			for i := 0; i < n; i++ {
				v, err := mvpoly.Variable[uint64](f, n, i)
				if err != nil {
					return mvpoly.Poly[uint64]{}, err
				}
				if a&(1<<i) == 0 {
					if v, err = v.Add(f, mvpoly.Constant[uint64](f, n, f.One())); err != nil {
						return mvpoly.Poly[uint64]{}, err
					}
				}
				if h, err = h.Mul(f, v); err != nil {
					return mvpoly.Poly[uint64]{}, err
				}
			}
			var err error
			if acc, err = acc.Add(f, h); err != nil {
				return mvpoly.Poly[uint64]{}, err
			}
		}
		return acc, nil
	}
	nextPolys := make([]mvpoly.Poly[uint64], stateBits)
	for bit := 0; bit < stateBits; bit++ {
		b := bit
		p, err := bitPoly(func(next, _ uint64) uint8 { return uint8(next >> b & 1) })
		if err != nil {
			return nil, err
		}
		nextPolys[bit] = p
	}
	outPolys := make([]mvpoly.Poly[uint64], outBits)
	for bit := 0; bit < outBits; bit++ {
		b := bit
		p, err := bitPoly(func(_, out uint64) uint8 { return uint8(out >> b & 1) })
		if err != nil {
			return nil, err
		}
		outPolys[bit] = p
	}
	return NewTransition[uint64](f, name, stateBits, cmdBits, nextPolys, outPolys)
}

// PackBits embeds the low `width` bits of v into a GF(2^m) vector per
// equation (13) (bit i of v becomes coordinate i).
func PackBits(f *field.GF2m, v uint64, width int) []uint64 {
	out := make([]uint64, width)
	for i := 0; i < width; i++ {
		out[i] = f.EmbedBit(uint8(v >> i & 1))
	}
	return out
}

// UnpackBits inverts PackBits; it fails if any coordinate is not an
// embedded bit (which cannot happen in an honest execution, Appendix A).
func UnpackBits(f *field.GF2m, vec []uint64) (uint64, error) {
	var v uint64
	for i, e := range vec {
		bit, err := f.ExtractBit(e)
		if err != nil {
			return 0, fmt.Errorf("sm: coordinate %d: %w", i, err)
		}
		v |= uint64(bit) << i
	}
	return v, nil
}
