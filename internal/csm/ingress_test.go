package csm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"codedsm/internal/field"
)

// submitAll drives a client with one in-order submitter goroutine per
// machine, submitting machine k's command of every workload round, and
// returns the admitted futures (indexed [round][machine]) once all
// submissions are enqueued.
func submitAll(t *testing.T, cl *Client[uint64], wl [][][]uint64) [][]*Future[uint64] {
	t.Helper()
	k := len(wl[0])
	futs := make([][]*Future[uint64], len(wl))
	for r := range futs {
		futs[r] = make([]*Future[uint64], k)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, k)
	for machine := 0; machine < k; machine++ {
		wg.Add(1)
		go func(machine int) {
			defer wg.Done()
			for r := range wl {
				fut, err := cl.Submit(context.Background(), machine, wl[r][machine])
				if err != nil {
					errCh <- err
					return
				}
				futs[r][machine] = fut
			}
		}(machine)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("submit: %v", err)
	}
	return futs
}

func roundResultsEqual(t *testing.T, name string, got, want *RoundResult[uint64]) {
	t.Helper()
	if got.Correct != want.Correct || got.Skipped != want.Skipped || got.Ticks != want.Ticks {
		t.Fatalf("%s: correct/skipped/ticks = %v/%v/%d, want %v/%v/%d",
			name, got.Correct, got.Skipped, got.Ticks, want.Correct, want.Skipped, want.Ticks)
	}
	if len(got.FaultyDetected) != len(want.FaultyDetected) {
		t.Fatalf("%s: faulty %v, want %v", name, got.FaultyDetected, want.FaultyDetected)
	}
	for i := range got.FaultyDetected {
		if got.FaultyDetected[i] != want.FaultyDetected[i] {
			t.Fatalf("%s: faulty %v, want %v", name, got.FaultyDetected, want.FaultyDetected)
		}
	}
	if len(got.Outputs) != len(want.Outputs) {
		t.Fatalf("%s: %d outputs, want %d", name, len(got.Outputs), len(want.Outputs))
	}
	for k := range got.Outputs {
		if (got.Outputs[k] == nil) != (want.Outputs[k] == nil) {
			t.Fatalf("%s: machine %d output nil-ness differs", name, k)
		}
		if len(got.Outputs[k]) != len(want.Outputs[k]) {
			t.Fatalf("%s: machine %d output length %d, want %d", name, k, len(got.Outputs[k]), len(want.Outputs[k]))
		}
		for i := range got.Outputs[k] {
			if got.Outputs[k][i] != want.Outputs[k][i] {
				t.Fatalf("%s: machine %d output %v, want %v", name, k, got.Outputs[k], want.Outputs[k])
			}
		}
	}
}

// TestSubmitBitIdenticalToRun pins the deterministic-admission contract:
// a Submit-driven cluster produces bit-identical outputs, op counts, and
// ticks to Run on the same seeded workload, across the sequential,
// parallel, and pipelined engines.
func TestSubmitBitIdenticalToRun(t *testing.T) {
	gold := field.NewGoldilocks()
	base := Config[uint64]{
		BaseField:     gold,
		NewTransition: bankFactory,
		K:             3, N: 13, MaxFaults: 2,
		Consensus: DolevStrong,
		Byzantine: map[int]Behavior{4: WrongResult, 9: Silent},
		Seed:      77,
	}
	engines := map[string]func(Config[uint64]) Config[uint64]{
		"sequential": func(c Config[uint64]) Config[uint64] { return c },
		"parallel": func(c Config[uint64]) Config[uint64] {
			c.Parallelism = 4
			return c
		},
		"pipelined": func(c Config[uint64]) Config[uint64] {
			c.Pipeline = 2
			c.BatchSize = 2
			c.Parallelism = 2
			return c
		},
	}
	// 7 rounds with BatchSize 2 exercises a partial final batch too.
	const rounds = 7
	wl := RandomWorkload[uint64](gold, rounds, base.K, 1, 5)
	for name, mutate := range engines {
		t.Run(name, func(t *testing.T) {
			cfg := mutate(base)
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(wl)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cl, err := sub.Open(WithDeterministicAdmission(), WithSubmitQueueDepth(2))
			if err != nil {
				t.Fatal(err)
			}
			futs := submitAll(t, cl, wl)
			if err := cl.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if got, wantN := sub.Round(), ref.Round(); got != wantN {
				t.Fatalf("rounds executed: %d, want %d", got, wantN)
			}
			for r := range wl {
				res, err := futs[r][0].Round(context.Background())
				if err != nil {
					t.Fatalf("round %d future: %v", r, err)
				}
				roundResultsEqual(t, name, res, want[r])
				for k := range wl[r] {
					out, err := futs[r][k].Wait(context.Background())
					if err != nil {
						t.Fatalf("round %d machine %d: %v", r, k, err)
					}
					wantOut := want[r].Outputs[k]
					if len(out) != len(wantOut) {
						t.Fatalf("round %d machine %d output length %d, want %d", r, k, len(out), len(wantOut))
					}
					for i := range out {
						if out[i] != wantOut[i] {
							t.Fatalf("round %d machine %d output %v, want %v", r, k, out, wantOut)
						}
					}
				}
			}
			if got, wantOps := sub.OpCounts(), ref.OpCounts(); got != wantOps {
				t.Fatalf("op counts %+v, want %+v", got, wantOps)
			}
		})
	}
}

// TestSubmitResultsStream checks the Results iterator yields every
// admitted future in admission order.
func TestSubmitResultsStream(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(3), WithFaults(2), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 4, 3, 1, 8)
	cl, err := c.Open(WithDeterministicAdmission())
	if err != nil {
		t.Fatal(err)
	}
	// The stream starts at the Results call: obtain it before submitting
	// so every admission is observed.
	results := cl.Results()
	futs := submitAll(t, cl, wl)
	go cl.Close()
	seen := 0
	for fut := range results {
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatalf("future %d: %v", seen, err)
		}
		// Admission order is round-major, machine-minor.
		if want := futs[seen/3][seen%3]; fut != want {
			t.Fatalf("future %d out of admission order", seen)
		}
		seen++
	}
	if seen != 12 {
		t.Fatalf("streamed %d futures, want 12", seen)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitPadsIdleMachines: closing with only one machine's command
// pending pads the others with the identity command, and the idle
// machines' states are unchanged.
func TestSubmitPadsIdleMachines(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(3), WithFaults(2),
		WithInitialStates([][]uint64{{100}, {200}, {300}}), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Open()
	if err != nil {
		t.Fatal(err)
	}
	fut, err := cl.Submit(context.Background(), 1, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 207 {
		t.Fatalf("machine 1 output %v, want 207", out)
	}
	states := c.OracleStates()
	if states[0][0] != 100 || states[1][0] != 207 || states[2][0] != 300 {
		t.Fatalf("states after padded round: %v", states)
	}
}

// TestSubmitBackpressure: a full per-machine queue blocks Submit until the
// context is canceled.
func TestSubmitBackpressure(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(2), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic admission with machine 1 idle: nothing is ever
	// admitted, so machine 0's queue (depth 1) stays full after one
	// buffered submission (the scheduler holds a second one in its
	// blocking receive).
	cl, err := c.Open(WithDeterministicAdmission(), WithSubmitQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if _, err := cl.Submit(ctx, 0, []uint64{1}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		cancel()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cl.Submit(ctx, 0, []uint64{1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overfull submit: %v, want deadline exceeded", err)
	}
}

// TestSubmitAfterClose and invalid arguments fail with typed errors.
func TestSubmitValidation(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(2), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(); err == nil {
		t.Fatal("second Open should fail while a client is open")
	}
	if _, err := cl.Submit(context.Background(), 5, []uint64{1}); err == nil {
		t.Fatal("out-of-range machine should fail")
	}
	if _, err := cl.Submit(context.Background(), 0, []uint64{1, 2}); err == nil {
		t.Fatal("wrong command length should fail")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(context.Background(), 0, []uint64{1}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("submit after close: %v, want ErrClientClosed", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// The cluster is released: a new client can open.
	cl2, err := c.Open()
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := cl2.Close(); err != nil {
		t.Fatal(err)
	}
	// The single-client guard holds under concurrent Opens.
	const racers = 8
	var wg sync.WaitGroup
	clients := make([]*Client[uint64], racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clients[i], _ = c.Open()
		}(i)
	}
	wg.Wait()
	opened := 0
	for _, won := range clients {
		if won != nil {
			opened++
			if err := won.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if opened != 1 {
		t.Fatalf("%d concurrent Opens succeeded, want exactly 1", opened)
	}
}

// TestSubmitLivenessUnderBadLeader: the ingress retries skipped consensus
// instances under rotated leaders, so futures still resolve when a
// Byzantine leader corrupts proposals.
func TestSubmitLivenessUnderBadLeader(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(13), WithMachines(2), WithFaults(2),
		WithConsensus(DolevStrong), WithByzantineNode(0, BadLeader), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Open(WithDeterministicAdmission())
	if err != nil {
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 2, 2, 1, 9)
	futs := submitAll(t, cl, wl)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	// Node 0 leads instance 0 and corrupts it; the retry under node 1
	// executes the round.
	for r := range futs {
		for k, fut := range futs[r] {
			if _, err := fut.Wait(context.Background()); err != nil {
				t.Fatalf("round %d machine %d: %v", r, k, err)
			}
		}
	}
}

// TestRoundsIterator: the streaming runner yields every report and
// surfaces failures as a trailing BatchError.
func TestRoundsIterator(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(3), WithFaults(2),
		WithByzantineNode(4, WrongResult), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(gold, bankFactory, WithNodes(12), WithMachines(3), WithFaults(2),
		WithByzantineNode(4, WrongResult), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 4, 3, 1, 12)
	want, err := ref.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for res, err := range c.Rounds(wl) {
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		roundResultsEqual(t, "rounds", res, want[i])
		i++
	}
	if i != len(wl) {
		t.Fatalf("streamed %d rounds, want %d", i, len(wl))
	}

	// A malformed round fails mid-stream with a BatchError naming it.
	bad := RandomWorkload[uint64](gold, 3, 3, 1, 13)
	bad[1] = bad[1][:2] // wrong machine count
	var got []*RoundResult[uint64]
	var streamErr error
	for res, err := range c.Rounds(bad) {
		if err != nil {
			streamErr = err
			break
		}
		got = append(got, res)
	}
	var batchErr *BatchError[uint64]
	if !errors.As(streamErr, &batchErr) {
		t.Fatalf("stream error %v, want BatchError", streamErr)
	}
	// Streaming leaves Completed nil (the reports were already yielded).
	if batchErr.Round != 1 || batchErr.Completed != nil || len(got) != 1 {
		t.Fatalf("BatchError round=%d completed=%d streamed=%d, want 1/nil/1",
			batchErr.Round, len(batchErr.Completed), len(got))
	}
}

// TestOpenOptionValidation: option misuse fails Open eagerly with a
// message naming the option.
func TestOpenOptionValidation(t *testing.T) {
	gold := field.NewGoldilocks()
	cases := map[string][]Option{
		"no nodes":      {WithMachines(2)},
		"bad nodes":     {WithNodes(0)},
		"bad machines":  {WithNodes(12), WithMachines(-1)},
		"bad faults":    {WithNodes(12), WithFaults(-2)},
		"bad batch":     {WithNodes(12), WithBatching(-1)},
		"bad pipeline":  {WithNodes(12), WithPipeline(-1)},
		"bad consensus": {WithNodes(12), WithConsensus(ConsensusKind(42))},
		"bad states":    {WithNodes(12), WithMachines(2), WithInitialStates([][]int{{1}})},
		"nil churn fn":  {WithNodes(12), WithChurnFn(nil)},
		"bad gst":       {WithNodes(12), WithPartialSync(-1)},
		"over capacity": {WithNodes(4), WithMachines(4), WithFaults(2)},
		"budget exceeded": {WithNodes(12), WithMachines(2), WithFaults(1),
			WithByzantine(map[int]Behavior{1: WrongResult, 2: WrongResult})},
	}
	for name, opts := range cases {
		if _, err := Open(gold, bankFactory, opts...); err == nil {
			t.Errorf("%s: Open succeeded, want error", name)
		}
	}
	// The budget failure is typed.
	_, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(1),
		WithByzantine(map[int]Behavior{1: WrongResult, 2: WrongResult}))
	if !errors.Is(err, ErrFaultBudgetExceeded) {
		t.Fatalf("budget error %v, want ErrFaultBudgetExceeded", err)
	}
	// K defaults to full capacity.
	c, err := Open(gold, bankFactory, WithNodes(12), WithFaults(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.K != 8 { // SyncMaxMachines(12, 2, 1)
		t.Fatalf("defaulted K=%d, want 8", c.cfg.K)
	}
}

// TestTypedErrors: the sentinels classify construction and run failures.
func TestTypedErrors(t *testing.T) {
	gold := field.NewGoldilocks()
	// Quorum: too many non-senders in partial synchrony (crashes are
	// erasures, so three of them fit the 2b=4 parity budget but exceed the
	// b-bounded non-sender rule).
	_, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(2),
		WithPartialSync(0), WithByzantine(map[int]Behavior{1: Crashed, 2: Crashed, 3: Crashed}))
	if !errors.Is(err, ErrQuorumUnreachable) {
		t.Fatalf("psync dark error %v, want ErrQuorumUnreachable", err)
	}
	// Round limit: a bad leader on every instance within the attempt
	// budget.
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(2),
		WithConsensus(DolevStrong), WithByzantineNode(0, BadLeader), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 1, 2, 1, 3)
	// Sabotage: rotate leadership back to node 0 every attempt by allowing
	// only one attempt.
	_, err = c.RunQueue(wl, 1)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("retry-exhausted error %v, want ErrRoundLimit", err)
	}
	var batchErr *BatchError[uint64]
	if !errors.As(err, &batchErr) || batchErr.Round != 0 || len(batchErr.Completed) != 0 {
		t.Fatalf("retry-exhausted error %v, want BatchError at round 0", err)
	}
}
