// Fixture for the walfsync analyzer, loaded under the internal/wal
// path.
package fixture

import "os"

type lg struct {
	f      *os.File
	always bool
}

// publishBad renames with no preceding fsync: a crash can publish an
// empty file.
func publishBad(tmp, final string) error {
	return os.Rename(tmp, final) // want `os.Rename\(tmp, final\) publishes a file with no preceding Sync`
}

// publishGood syncs the temp file before renaming it into place.
func publishGood(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // no finding: Sync precedes
}

// appendNoSync writes and returns without ever reaching a Sync.
func appendNoSync(l *lg, rec []byte) error {
	_, err := l.f.Write(rec) // want `appendNoSync writes to an \*os.File with no Sync`
	return err
}

// appendEarlyReturn has a success return in the write-to-sync window.
func appendEarlyReturn(l *lg, rec []byte) error {
	if _, err := l.f.Write(rec); err != nil {
		return err // error path: exempt
	}
	if len(rec) == 0 {
		return nil // want `appendEarlyReturn returns after a file write but before the SyncPolicy is honored`
	}
	return l.f.Sync() // the return performs the sync: exempt
}

// maybeSync is the SyncPolicy helper shape: the fact pass marks it (and
// its callers' sync sites) as honoring the policy.
func (l *lg) maybeSync() error {
	if l.always {
		return l.f.Sync()
	}
	return nil
}

// appendViaHelper honors the policy through maybeSync.
func appendViaHelper(l *lg, rec []byte) error {
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	return l.maybeSync() // no finding: helper transitively syncs
}

// truncateBad is a write-shaped mutation with no sync.
func truncateBad(l *lg) error {
	return l.f.Truncate(0) // want `truncateBad writes to an \*os.File with no Sync`
}

// renameAnnotated documents a deliberate exception.
func renameAnnotated(tmp, final string) error {
	//csmlint:allow walfsync(directory entry only; content durability handled by the caller)
	return os.Rename(tmp, final)
}
