package csm

import (
	"encoding/binary"
	"errors"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

var gold = field.NewGoldilocks()

func bankFactory(f field.Field[uint64]) (*sm.Transition[uint64], error) {
	return sm.NewBank(f)
}

func quadFactory(f field.Field[uint64]) (*sm.Transition[uint64], error) {
	return sm.NewQuadraticTally(f)
}

func newCluster(t *testing.T, cfg Config[uint64]) *Cluster[uint64] {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func baseConfig(k, n, b int) Config[uint64] {
	return Config[uint64]{
		BaseField:     gold,
		NewTransition: bankFactory,
		K:             k, N: n, MaxFaults: b,
		Mode:      transport.Sync,
		Consensus: Oracle,
		Seed:      42,
	}
}

func runRounds(t *testing.T, c *Cluster[uint64], rounds int) []*RoundResult[uint64] {
	t.Helper()
	wl := RandomWorkload[uint64](gold, rounds, c.cfg.K, c.tr.CmdLen(), 7)
	out, err := c.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	cfg := baseConfig(2, 9, 2)
	cfg.BaseField = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil field should fail")
	}
	cfg = baseConfig(2, 9, 2)
	cfg.MaxFaults = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative b should fail")
	}
	cfg = baseConfig(2, 9, 2)
	cfg.Byzantine = map[int]Behavior{0: WrongResult, 1: Silent, 2: WrongResult}
	if _, err := New(cfg); err == nil {
		t.Error("more Byzantine nodes than budget should fail")
	}
	// Capacity: K beyond Table 2 bound must be rejected.
	cfg = baseConfig(lcc.SyncMaxMachines(9, 2, 1)+1, 9, 2)
	if _, err := New(cfg); err == nil {
		t.Error("over-capacity K should fail")
	}
	cfg = baseConfig(2, 9, 2)
	cfg.InitialStates = make([][]uint64, 5)
	if _, err := New(cfg); err == nil {
		t.Error("wrong initial state count should fail")
	}
}

func TestAllHonestMatchesOracle(t *testing.T) {
	for _, factory := range []TransitionFactory[uint64]{bankFactory, quadFactory} {
		cfg := baseConfig(3, 12, 2)
		cfg.NewTransition = factory
		c := newCluster(t, cfg)
		results := runRounds(t, c, 5)
		for r, res := range results {
			if !res.Correct {
				t.Fatalf("round %d incorrect with no faults", r)
			}
			if len(res.FaultyDetected) != 0 {
				t.Fatalf("round %d: spurious faults %v", r, res.FaultyDetected)
			}
		}
	}
}

func TestByzantineWrongResultsCorrected(t *testing.T) {
	const k, n, b = 2, 12, 3
	cfg := baseConfig(k, n, b)
	cfg.Byzantine = map[int]Behavior{1: WrongResult, 5: WrongResult, 9: WrongResult}
	c := newCluster(t, cfg)
	results := runRounds(t, c, 4)
	for r, res := range results {
		if !res.Correct {
			t.Fatalf("round %d: CSM failed to correct %d wrong results", r, b)
		}
		if len(res.FaultyDetected) != 3 {
			t.Fatalf("round %d: detected faulty %v, want the 3 liars", r, res.FaultyDetected)
		}
		for _, idx := range res.FaultyDetected {
			if idx != 1 && idx != 5 && idx != 9 {
				t.Fatalf("round %d: honest node %d accused", r, idx)
			}
		}
	}
}

func TestByzantineSilentTreatedAsErasures(t *testing.T) {
	cfg := baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{0: Silent, 4: Silent}
	c := newCluster(t, cfg)
	for _, res := range runRounds(t, c, 3) {
		if !res.Correct {
			t.Fatal("silent nodes must not break decoding")
		}
	}
}

func TestEquivocationStillConsistent(t *testing.T) {
	// Point-to-point network, Byzantine nodes send different values to
	// different peers: every honest node still decodes the same (correct)
	// outputs because RS decoding corrects any <= b wrong coordinates
	// (Section 5.2: "reconstructed polynomials at all honest nodes are
	// identical even ... in presence of equivocation").
	cfg := baseConfig(2, 12, 3)
	cfg.NoEquivocation = false
	cfg.Byzantine = map[int]Behavior{2: Equivocate, 7: Equivocate, 11: Equivocate}
	c := newCluster(t, cfg)
	for _, res := range runRounds(t, c, 3) {
		if !res.Correct {
			t.Fatal("equivocation broke consistency")
		}
	}
	// All honest nodes hold identical coded states afterwards only at the
	// coding level: verify by re-decoding states from any K honest nodes.
	ref := c.OracleStates()
	for k := range ref {
		if ref[k][0] == 0 {
			t.Skip("degenerate workload")
		}
	}
}

func TestMixedByzantineAtBudget(t *testing.T) {
	const k, n, b = 2, 16, 4
	cfg := baseConfig(k, n, b)
	cfg.Byzantine = map[int]Behavior{
		0: WrongResult, 3: Silent, 8: Equivocate, 13: WrongResult,
	}
	cfg.NoEquivocation = false
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 5) {
		if !res.Correct {
			t.Fatalf("round %d failed at exactly b=%d mixed faults", r, b)
		}
	}
}

func TestStateEvolutionOverManyRounds(t *testing.T) {
	cfg := baseConfig(3, 12, 2)
	cfg.Byzantine = map[int]Behavior{6: WrongResult}
	cfg.InitialStates = [][]uint64{{100}, {200}, {300}}
	c := newCluster(t, cfg)
	results := runRounds(t, c, 10)
	for r, res := range results {
		if !res.Correct {
			t.Fatalf("round %d incorrect", r)
		}
	}
	// Node coded states must equal fresh encodings of the oracle states.
	enc, err := c.code.EncodeVectors(c.OracleStates())
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.nodes {
		if n.behavior != Honest {
			continue
		}
		if !field.VecEqual[uint64](gold, n.codedState, enc[i]) {
			t.Fatalf("node %d coded state diverged after 10 rounds", i)
		}
	}
}

func TestPartialSyncExecution(t *testing.T) {
	cfg := baseConfig(2, 16, 4)
	cfg.Mode = transport.PartialSync
	cfg.GST = 0 // stabilized from the start; silent nodes still force the N-b path
	cfg.Byzantine = map[int]Behavior{3: Silent, 9: WrongResult}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 4) {
		if !res.Correct {
			t.Fatalf("round %d incorrect in partial synchrony", r)
		}
	}
}

func TestPartialSyncPreGSTDelays(t *testing.T) {
	cfg := baseConfig(2, 16, 4)
	cfg.Mode = transport.PartialSync
	cfg.GST = 50
	cfg.Byzantine = map[int]Behavior{5: Silent}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 3) {
		if !res.Correct {
			t.Fatalf("round %d incorrect with pre-GST delays", r)
		}
		if res.Ticks < 1 {
			t.Fatalf("round %d consumed no ticks", r)
		}
	}
}

func TestDolevStrongConsensusIntegration(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.Byzantine = map[int]Behavior{3: WrongResult}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 3) {
		if !res.Correct || res.Skipped {
			t.Fatalf("round %d: correct=%v skipped=%v", r, res.Correct, res.Skipped)
		}
	}
}

func TestBadLeaderSkipsRoundDolevStrong(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.Byzantine = map[int]Behavior{0: BadLeader} // node 0 leads round 0
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 2, 2, 1, 3)
	res0, err := c.ExecuteRound(wl[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res0.Skipped {
		t.Fatal("garbage proposal from Byzantine leader must skip the round")
	}
	// Round 1 has an honest leader: executes fine.
	res1, err := c.ExecuteRound(wl[1])
	if err != nil {
		t.Fatal(err)
	}
	if res1.Skipped || !res1.Correct {
		t.Fatalf("honest leader round: %+v", res1)
	}
}

func TestPBFTConsensusIntegration(t *testing.T) {
	cfg := baseConfig(2, 13, 3)
	cfg.Mode = transport.PartialSync
	cfg.GST = 0
	cfg.Consensus = PBFT
	cfg.Byzantine = map[int]Behavior{4: WrongResult}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatalf("round %d incorrect under PBFT", r)
		}
	}
}

func TestThroughputAccounting(t *testing.T) {
	cfg := baseConfig(3, 12, 2)
	c := newCluster(t, cfg)
	if c.OpCounts().Total() != 0 {
		t.Fatal("setup work leaked into op counters")
	}
	runRounds(t, c, 4)
	ops := c.OpCounts()
	if ops.Total() == 0 {
		t.Fatal("no operations counted")
	}
	// Sanity: per-round, per-node cost should be dominated by decoding,
	// and must be nonzero for every round.
	perNodePerRound := float64(ops.Total()) / float64(12*4)
	if perNodePerRound < 1 {
		t.Fatalf("implausible per-node cost %f", perNodePerRound)
	}
}

func TestExecuteRoundValidation(t *testing.T) {
	c := newCluster(t, baseConfig(2, 9, 2))
	if _, err := c.ExecuteRound([][]uint64{{1}}); err == nil {
		t.Error("wrong K should fail")
	}
	if _, err := c.ExecuteRound([][]uint64{{1, 2}, {3}}); err == nil {
		t.Error("wrong command length should fail")
	}
}

func TestAccessors(t *testing.T) {
	c := newCluster(t, baseConfig(2, 9, 2))
	if c.Code().K() != 2 || c.Code().N() != 9 {
		t.Error("Code accessor wrong")
	}
	if c.Transition().Name() != "bank" {
		t.Error("Transition accessor wrong")
	}
	if c.Round() != 0 {
		t.Error("initial round nonzero")
	}
	if _, err := c.NodeCodedState(0); err != nil {
		t.Error(err)
	}
	if _, err := c.NodeCodedState(99); err == nil {
		t.Error("out-of-range node should fail")
	}
	if Honest.String() != "honest" || WrongResult.String() == "" ||
		Silent.String() != "silent" || Equivocate.String() == "" ||
		BadLeader.String() == "" || Behavior(99).String() == "" {
		t.Error("behavior strings")
	}
	if Oracle.String() != "oracle" || DolevStrong.String() == "" ||
		PBFT.String() == "" || ConsensusKind(9).String() == "" {
		t.Error("consensus kind strings")
	}
}

func TestBeyondBudgetFails(t *testing.T) {
	// b+1 wrong results with a cluster sized for b must corrupt decoding
	// or produce wrong results — but the engine refuses to *configure*
	// such a cluster; simulate by lying about the budget at the transport
	// level instead: size for b=3 but inject 4 liars is rejected up front.
	cfg := baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{0: WrongResult, 1: WrongResult, 2: WrongResult, 3: WrongResult}
	if _, err := New(cfg); err == nil {
		t.Fatal("4 Byzantine nodes with b=3 must be rejected")
	}
}

func TestFigure2Scenario(t *testing.T) {
	// The paper's Figure 2: K=2 machines on N=3 nodes, node 2 malicious.
	// With d=1 the decoding bound needs 2b+1 <= N - d(K-1) = 2, i.e. b=0:
	// three nodes are NOT enough to tolerate one fault with two machines —
	// the cluster must refuse this configuration.
	cfg := baseConfig(2, 3, 1)
	_, err := New(cfg)
	if err == nil {
		t.Fatal("K=2, N=3, b=1 must exceed capacity (Figure 2's point)")
	}
	// The minimal working configuration for K=2, b=1, d=1 is N=4:
	// 2b+1 = 3 <= N - 1.
	cfg = baseConfig(2, 4, 1)
	cfg.Byzantine = map[int]Behavior{2: WrongResult}
	c := newCluster(t, cfg)
	for _, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatal("N=4 cluster failed")
		}
	}
}

func TestErrRoundStuck(t *testing.T) {
	// In partial synchrony with more silent nodes than the budget allows
	// to ignore... we cannot configure that; instead shrink the tick
	// budget below what pre-GST delays need.
	cfg := baseConfig(2, 16, 4)
	cfg.Mode = transport.PartialSync
	cfg.GST = 1 << 30 // never stabilizes
	cfg.MaxTicksPerRound = 1
	cfg.Byzantine = map[int]Behavior{3: Silent}
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 1, 2, 1, 3)
	_, err := c.ExecuteRound(wl[0])
	if err == nil {
		return // delays may have cooperated; nothing to assert
	}
	if !errors.Is(err, ErrRoundStuck) {
		t.Fatalf("want ErrRoundStuck, got %v", err)
	}
}

func TestResultPayloadCodec(t *testing.T) {
	c := newCluster(t, baseConfig(2, 9, 2))
	vec := []uint64{5, 0, field.GoldilocksModulus - 1}
	payload := c.encodeResultPayload(7, vec)
	round, got, ok := c.decodeResultPayload(payload)
	if !ok || round != 7 || !field.VecEqual[uint64](field.NewGoldilocks(), got, vec) {
		t.Fatalf("roundtrip failed: ok=%v round=%d got=%v", ok, round, got)
	}
	// Malformed payloads must be rejected, never panic: short, truncated,
	// trailing garbage, and a huge count whose *8 would overflow the int
	// length comparison.
	bad := [][]byte{
		nil,
		payload[:8],
		payload[:len(payload)-3],
		append(append([]byte(nil), payload...), 1, 2, 3),
	}
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint64(huge[8:], 1<<61)
	bad = append(bad, huge)
	for i, p := range bad {
		if _, _, ok := c.decodeResultPayload(p); ok {
			t.Errorf("malformed payload %d accepted", i)
		}
	}
}
