// Fixture for //csmlint:allow annotation validation: malformed syntax,
// unknown check names, empty reasons, and stale suppressions are all
// diagnostics. Expectations live in allow_test.go (the flagged lines
// are themselves comments, so they cannot carry want markers).
package fixture

//csmlint:allow detmap

//csmlint:allow nosuchcheck(tallies are order-free)

//csmlint:allow detmap()

//csmlint:allow detmap(x) trailing junk

//csmlint:allow detmap(sorted before use)

func used(m map[int]int) int {
	n := 0
	//csmlint:allow detmap(pure count, order-free)
	for range m {
		n++
	}
	return n
}
