package codedsm_test

import (
	"context"
	"fmt"
	"log"

	"codedsm"
)

// Example runs three coded bank accounts on twelve nodes with two
// Byzantine ones, and shows the decoded balances plus the identified liars.
func Example() {
	gold := codedsm.NewGoldilocks()
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(12), codedsm.WithMachines(3), codedsm.WithFaults(2),
		codedsm.WithByzantineNode(4, codedsm.WrongResult),
		codedsm.WithByzantineNode(9, codedsm.WrongResult),
		codedsm.WithInitialStates([][]uint64{{1000}, {2000}, {3000}}),
		codedsm.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.ExecuteRound([][]uint64{{100}, {200}, {300}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct:", res.Correct)
	fmt.Println("liars caught:", res.FaultyDetected)
	for k, out := range res.Outputs {
		fmt.Printf("account %d: %d\n", k, out[0])
	}
	// Output:
	// correct: true
	// liars caught: [4 9]
	// account 0: 1100
	// account 1: 2200
	// account 2: 3300
}

// ExampleOpen builds a cluster from functional options, letting the
// machine count default to the cluster's full Table 2 capacity.
func ExampleOpen() {
	gold := codedsm.NewGoldilocks()
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(12),
		codedsm.WithFaults(2),
		codedsm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machines at capacity:", len(cluster.OracleStates()))
	// A misconfiguration fails eagerly, naming the option.
	_, err = codedsm.Open(gold, codedsm.NewBank[uint64], codedsm.WithNodes(-1))
	fmt.Println("err:", err)
	// Output:
	// machines at capacity: 8
	// err: csm: Open: WithNodes(-1): need at least one node
}

// ExampleCluster_Open serves a cluster through the Submit-based ingress:
// individual commands become rounds, and each submission resolves a
// Future with its machine's decoded output.
func ExampleCluster_Open() {
	gold := codedsm.NewGoldilocks()
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(12), codedsm.WithMachines(2), codedsm.WithFaults(2),
		codedsm.WithByzantineNode(5, codedsm.WrongResult),
		codedsm.WithInitialStates([][]uint64{{500}, {900}}),
		codedsm.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	client, err := cluster.Open(codedsm.WithDeterministicAdmission())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	futA, err := client.Submit(ctx, 0, []uint64{25}) // deposit 25 to account 0
	if err != nil {
		log.Fatal(err)
	}
	futB, err := client.Submit(ctx, 1, []uint64{75}) // deposit 75 to account 1
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Close(); err != nil {
		log.Fatal(err)
	}
	outA, _ := futA.Wait(ctx)
	outB, _ := futB.Wait(ctx)
	fmt.Println("account 0 balance:", outA[0])
	fmt.Println("account 1 balance:", outB[0])
	// Output:
	// account 0 balance: 525
	// account 1 balance: 975
}

// ExampleFromExprs builds a custom degree-2 machine from polynomial
// expressions and runs it uncoded.
func ExampleFromExprs() {
	gold := codedsm.NewGoldilocks()
	tr, err := codedsm.FromExprs[uint64](gold, "tally",
		[]string{"s"}, []string{"x"},
		[]string{"s + x^2"}, []string{"s + x^2"})
	if err != nil {
		log.Fatal(err)
	}
	m, err := codedsm.NewMachine(tr, []uint64{0})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []uint64{1, 2, 3} {
		if _, err := m.Step([]uint64{v}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("degree:", tr.Degree())
	fmt.Println("tally:", m.State()[0])
	// Output:
	// degree: 2
	// tally: 14
}

// ExampleCommitteeSize shows the Section 6.1 auditor-count formula.
func ExampleCommitteeSize() {
	j, err := codedsm.CommitteeSize(0.001, 1.0/3.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("J = %d auditors for epsilon=0.001, mu=1/3\n", j)
	// Output:
	// J = 7 auditors for epsilon=0.001, mu=1/3
}

// ExampleSyncMaxMachines shows the Table 2 capacity bound.
func ExampleSyncMaxMachines() {
	// N=31 nodes, b=5 faults, degree-2 transitions:
	fmt.Println(codedsm.SyncMaxMachines(31, 5, 2))
	// Output:
	// 11
}
