package replication

import (
	"fmt"
	"math/rand/v2"

	"codedsm/internal/transport"
)

// AdversaryKind distinguishes the two threat models of Section 7's "Random
// Allocation vs. CSM" discussion.
type AdversaryKind int

const (
	// StaticAdversary corrupts nodes before the random group assignment is
	// drawn: with b = µN corruptions, each group receives about µq
	// corrupted nodes — typically below the majority threshold.
	StaticAdversary AdversaryKind = iota
	// DynamicAdversary observes the assignment first and then corrupts a
	// majority of a single group ("post-facto corruption"), needing only
	// q/2+1 corruptions regardless of N.
	DynamicAdversary
)

// String implements fmt.Stringer.
func (a AdversaryKind) String() string {
	if a == StaticAdversary {
		return "static"
	}
	return "dynamic"
}

// RandomAllocationExperiment models the Section 7 comparison: nodes are
// randomly allocated into K groups of q = N/K; the adversary has a budget
// of `budget` corruptions placed per its kind. The experiment reports
// whether some group ends up with a corrupted majority (safety violation of
// the random-allocation scheme).
type RandomAllocationExperiment struct {
	N, K   int
	Budget int
	Kind   AdversaryKind
	Seed   uint64
}

// Result is one trial's outcome.
type Result struct {
	// CompromisedGroup is the index of a group with a corrupted majority,
	// or -1.
	CompromisedGroup int
	// Assignment maps node -> group.
	Assignment []int
	// Corrupted lists the corrupted node indices.
	Corrupted []int
}

// Run performs `trials` independent trials and returns the fraction in
// which some group had a corrupted majority.
func (e RandomAllocationExperiment) Run(trials int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("%w: trials=%d", errConfig, trials)
	}
	bad := 0
	for t := 0; t < trials; t++ {
		res, err := e.Trial(uint64(t))
		if err != nil {
			return 0, err
		}
		if res.CompromisedGroup >= 0 {
			bad++
		}
	}
	return float64(bad) / float64(trials), nil
}

// Trial runs a single allocation + corruption round.
func (e RandomAllocationExperiment) Trial(trial uint64) (*Result, error) {
	if e.K < 1 || e.N%e.K != 0 {
		return nil, fmt.Errorf("%w: N=%d K=%d", errConfig, e.N, e.K)
	}
	if e.Budget < 0 || e.Budget > e.N {
		return nil, fmt.Errorf("%w: budget=%d", errConfig, e.Budget)
	}
	q := e.N / e.K
	rng := rand.New(rand.NewPCG(e.Seed, trial))
	// Random allocation: a uniformly random permutation split into groups.
	perm := rng.Perm(e.N)
	assignment := make([]int, e.N)
	groups := make([][]int, e.K)
	for pos, node := range perm {
		g := pos / q
		assignment[node] = g
		groups[g] = append(groups[g], node)
	}
	var corrupted []int
	switch e.Kind {
	case StaticAdversary:
		// Corruptions chosen before (independently of) the assignment.
		corrupted = rng.Perm(e.N)[:e.Budget]
	case DynamicAdversary:
		// Post-facto: concentrate the budget on one group.
		target := rng.IntN(e.K)
		need := q/2 + 1
		if e.Budget < need {
			// Not enough budget to flip any group.
			corrupted = groups[target][:e.Budget]
		} else {
			corrupted = append([]int(nil), groups[target][:need]...)
		}
	default:
		return nil, fmt.Errorf("%w: adversary kind %d", errConfig, e.Kind)
	}
	perGroup := make([]int, e.K)
	for _, node := range corrupted {
		perGroup[assignment[node]]++
	}
	res := &Result{CompromisedGroup: -1, Assignment: assignment, Corrupted: corrupted}
	for g, cnt := range perGroup {
		if cnt >= q/2+1 {
			res.CompromisedGroup = g
			break
		}
	}
	return res, nil
}

// CSMSecurityUnderDynamicAdversary returns the number of corruptions a
// dynamic adversary needs to break CSM with the same N, K, and degree d:
// unlike random allocation, there is no small group to capture — the
// adversary must exceed the Reed-Solomon radius, Θ(N) corruptions
// (Table 2: 2b <= N - d(K-1) - 1).
func CSMSecurityUnderDynamicAdversary(n, k, d int, mode transport.Mode) int {
	if d < 1 {
		d = 1
	}
	if mode == transport.PartialSync {
		return (n - d*(k-1) - 1) / 3
	}
	return (n - d*(k-1) - 1) / 2
}
