// Command csmnode runs one node of a Coded State Machine cluster as its
// own OS process, speaking the length-prefixed signed TCP transport to
// its peers. A cluster is N csmnode processes, each started from a
// static per-node config file; `csmnode bootstrap` writes a matching set
// of config files for an N-node localhost cluster.
//
//	csmnode bootstrap -dir cluster -n 4 -k 2 -seed 42 -serve
//	csmnode run -config cluster/node1.json &
//	csmnode run -config cluster/node2.json &
//	csmnode run -config cluster/node3.json &
//	csmnode run -config cluster/node0.json -rounds 16   # leads a seeded workload
//
// Node 0 is the sequencer. With -rounds it leads a seeded random
// workload; with -serve it listens on the config's client address and
// sequences rounds submitted by nodeapi clients (the Submit ingress,
// over a socket). Followers need neither flag — they execute whatever
// the sequencer agrees until the stop marker arrives.
//
// Every node prints `digest=<hex>` (a canonical SHA-256 over all decoded
// outputs) and `rounds=<n>` on stdout when the run ends; honest nodes of
// one run print identical digests, and the digest equals the in-memory
// simulated cluster's on the same workload. SIGINT/SIGTERM shut the node
// down gracefully: the transport closes, the barrier unblocks, and the
// digest of the rounds executed so far is still printed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/nodeapi"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

// nodeConfig is the static per-node cluster configuration. All fields
// except Node, Listen, and ClientListen must be identical across the
// cluster's config files.
type nodeConfig struct {
	Node   int      `json:"node"`   // this node's id (0 = sequencer)
	N      int      `json:"n"`      // cluster size
	K      int      `json:"k"`      // number of state machines
	Faults int      `json:"faults"` // fault budget b the code is sized for
	Degree int      `json:"degree"` // polynomial-register transition degree
	Seed   uint64   `json:"seed"`   // shared cluster seed (keys + workload)
	Batch  int      `json:"batch"`  // rounds per sequencer batch (workload mode)
	Listen string   `json:"listen"` // this node's transport listen address
	Peers  []string `json:"peers"`  // all N transport addresses, node order
	// ClientListen is the sequencer's nodeapi ingress address (serve
	// mode); empty elsewhere.
	ClientListen  string `json:"client_listen,omitempty"`
	StepTimeoutMS int    `json:"step_timeout_ms,omitempty"`
}

func (c nodeConfig) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("n=%d: a multi-process cluster needs at least 2 nodes", c.N)
	case c.Node < 0 || c.Node >= c.N:
		return fmt.Errorf("node=%d out of range for n=%d", c.Node, c.N)
	case c.K < 1:
		return fmt.Errorf("k=%d: need at least one machine", c.K)
	case c.Degree < 1:
		return fmt.Errorf("degree=%d: need a degree >= 1 transition", c.Degree)
	case c.Batch < 0:
		return fmt.Errorf("batch=%d must be >= 0", c.Batch)
	case len(c.Peers) != c.N:
		return fmt.Errorf("%d peer addresses for n=%d", len(c.Peers), c.N)
	case c.Listen == "":
		return errors.New("listen address is empty")
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "bootstrap":
		err = bootstrap(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csmnode:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  csmnode bootstrap -dir DIR [-n 4] [-k 2] [-faults 0] [-degree 2] [-seed 42] [-batch 1] [-serve]
      write per-node config files for an N-node localhost cluster
  csmnode run -config FILE [-rounds R] [-serve]
      run one node; node 0 leads R seeded workload rounds (-rounds) or
      serves the nodeapi Submit ingress (-serve)`)
}

// bootstrap writes node{i}.json config files for a localhost cluster,
// probing the kernel for free ports.
func bootstrap(args []string) error {
	fs := flag.NewFlagSet("bootstrap", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to write node config files into")
	n := fs.Int("n", 4, "cluster size")
	k := fs.Int("k", 2, "number of state machines")
	faults := fs.Int("faults", 0, "fault budget the code is sized for")
	degree := fs.Int("degree", 2, "polynomial-register transition degree")
	seed := fs.Uint64("seed", 42, "shared cluster seed")
	batch := fs.Int("batch", 1, "rounds per sequencer batch")
	serve := fs.Bool("serve", false, "give node 0 a client ingress address")
	fs.Parse(args)

	if maxK := lcc.SyncMaxMachines(*n, *faults, *degree); *k > maxK {
		return fmt.Errorf("k=%d exceeds capacity %d for n=%d faults=%d degree=%d (need n >= (k-1)*degree + 2*faults + 1)",
			*k, maxK, *n, *faults, *degree)
	}
	ports := *n
	if *serve {
		ports++
	}
	addrs, err := probePorts(ports)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		cfg := nodeConfig{
			Node: i, N: *n, K: *k, Faults: *faults, Degree: *degree,
			Seed: *seed, Batch: *batch,
			Listen: addrs[i], Peers: addrs[:*n],
		}
		if *serve && i == 0 {
			cfg.ClientListen = addrs[*n]
		}
		if err := cfg.validate(); err != nil {
			return err
		}
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, fmt.Sprintf("node%d.json", i))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

// probePorts reserves n distinct localhost addresses by briefly binding
// port 0. The listeners close before returning, so the ports are free
// for the nodes to bind (a small reuse race a static config format has
// to live with).
func probePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// run runs one node until its workload finishes, its sequencer stops the
// cluster, or a termination signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	configPath := fs.String("config", "", "node config file (required)")
	rounds := fs.Int("rounds", 0, "sequencer only: lead this many seeded workload rounds")
	serve := fs.Bool("serve", false, "sequencer only: serve the nodeapi Submit ingress")
	fs.Parse(args)
	if *configPath == "" {
		return errors.New("run needs -config")
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg nodeConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", *configPath, err)
	}
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("%s: %w", *configPath, err)
	}
	if cfg.Node == 0 {
		if *serve && *rounds > 0 {
			return errors.New("-serve and -rounds are mutually exclusive")
		}
		if !*serve && *rounds <= 0 {
			return errors.New("the sequencer (node 0) needs -rounds or -serve")
		}
		if *serve && cfg.ClientListen == "" {
			return errors.New("-serve needs a client_listen address in the config (bootstrap -serve)")
		}
	}

	stepTimeout := time.Duration(cfg.StepTimeoutMS) * time.Millisecond
	link, err := transport.NewTCP(transport.TCPConfig{
		Self: transport.NodeID(cfg.Node), N: cfg.N, Seed: cfg.Seed,
		Listen: cfg.Listen, Peers: cfg.Peers,
		StepTimeout: stepTimeout,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "node %d: "+format+"\n", append([]any{cfg.Node}, a...)...)
		},
	})
	if err != nil {
		return fmt.Errorf("bringing up transport: %w", err)
	}
	defer link.Close()

	// Graceful shutdown: closing the link fails any blocked barrier with
	// ErrClosed, which unwinds the engine; the digest still prints.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var clientLn net.Listener
	if cfg.Node == 0 && *serve {
		clientLn, err = net.Listen("tcp", cfg.ClientListen)
		if err != nil {
			return fmt.Errorf("binding client ingress: %w", err)
		}
		defer clientLn.Close()
	}
	var interrupted atomic.Bool
	go func() {
		s := <-sigc
		interrupted.Store(true)
		fmt.Fprintf(os.Stderr, "node %d: received %v, shutting down\n", cfg.Node, s)
		if clientLn != nil {
			clientLn.Close()
		}
		link.Close()
	}()

	gold := field.NewGoldilocks()
	proc, err := csm.NewNodeProcess(csm.RemoteConfig[uint64]{
		BaseField: gold,
		NewTransition: func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
			return sm.NewPolynomialRegister(f, cfg.Degree)
		},
		K:         cfg.K,
		MaxFaults: cfg.Faults,
	}, link)
	if err != nil {
		return err
	}

	digest := nodeapi.NewDigest()
	executed := 0
	record := func(outs [][][]uint64) {
		for _, roundOut := range outs {
			digest.AddRound(executed, roundOut)
			executed++
		}
	}

	var runErr error
	switch {
	case cfg.Node != 0:
		outs, err := proc.Follow()
		record(outs)
		runErr = err
	case *rounds > 0:
		workload := csm.RandomWorkload[uint64](gold, *rounds, cfg.K, proc.Transition().CmdLen(), cfg.Seed)
		outs, err := proc.Lead(workload, cfg.Batch)
		record(outs)
		runErr = err
	default:
		runErr = serveIngress(proc, clientLn, digest, &executed)
	}
	if interrupted.Load() && errors.Is(runErr, transport.ErrClosed) {
		runErr = nil // clean signal shutdown
	}
	fmt.Printf("digest=%s\n", digest.Sum())
	fmt.Printf("rounds=%d\n", executed)
	return runErr
}

// serveIngress is the sequencer's serve mode: accept nodeapi clients one
// at a time and sequence the rounds they submit. A round is cut as soon
// as every machine has a pending command; flush cuts one immediately,
// padding idle machines. The digest and round counter advance exactly as
// in workload mode.
func serveIngress(proc *csm.NodeProcess[uint64], ln net.Listener, digest *nodeapi.Digest, executed *int) error {
	gold := field.NewGoldilocks()
	cmdLen := proc.Transition().CmdLen()
	for {
		raw, err := ln.Accept()
		if err != nil {
			// Listener closed: a signal shutdown. Stop the cluster so the
			// followers unwind too.
			return proc.Stop()
		}
		done, err := serveClient(proc, nodeapi.NewConn(raw), gold, cmdLen, digest, executed)
		raw.Close()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// serveClient drives one client session. done is true when the client
// closed the cluster (as opposed to only disconnecting).
func serveClient(proc *csm.NodeProcess[uint64], conn *nodeapi.Conn, gold field.Goldilocks, cmdLen int, digest *nodeapi.Digest, executed *int) (done bool, err error) {
	K := proc.Machines()
	pending := make([][][]uint64, K) // per-machine FIFO
	fail := func(msg string) {
		conn.WriteResponse(nodeapi.Response{Op: nodeapi.OpError, Msg: msg})
	}
	// cut sequences one round from the pending queues, padding machines
	// with nothing queued, and streams all K outputs back.
	cut := func() error {
		cmds := make([][]uint64, K)
		for m := 0; m < K; m++ {
			if len(pending[m]) > 0 {
				cmds[m] = pending[m][0]
				pending[m] = pending[m][1:]
			} else {
				cmds[m] = make([]uint64, cmdLen) // pad: identity command
			}
		}
		round := proc.Round()
		outs, err := proc.LeadBatch([][][]uint64{cmds})
		if err != nil {
			return err
		}
		for _, roundOut := range outs {
			digest.AddRound(*executed, roundOut)
			*executed++
			for m, out := range roundOut {
				if err := conn.WriteResponse(nodeapi.Response{
					Op: nodeapi.OpResult, Round: round, Machine: m, Output: out,
				}); err != nil {
					return err
				}
			}
			round++
		}
		return nil
	}
	allPending := func() bool {
		for m := 0; m < K; m++ {
			if len(pending[m]) == 0 {
				return false
			}
		}
		return true
	}
	anyPending := func() bool {
		for m := 0; m < K; m++ {
			if len(pending[m]) > 0 {
				return true
			}
		}
		return false
	}
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			// Client went away without closing the cluster; keep serving.
			return false, nil
		}
		switch req.Op {
		case nodeapi.OpSubmit:
			if req.Machine < 0 || req.Machine >= K {
				fail(fmt.Sprintf("machine %d out of range [0,%d)", req.Machine, K))
				return false, nil
			}
			if len(req.Cmd) != cmdLen {
				fail(fmt.Sprintf("command length %d, want %d", len(req.Cmd), cmdLen))
				return false, nil
			}
			cmd := make([]uint64, cmdLen)
			for i, v := range req.Cmd {
				cmd[i] = gold.Uint64(gold.FromUint64(v)) // canonicalize into the field
			}
			pending[req.Machine] = append(pending[req.Machine], cmd)
			for allPending() {
				if err := cut(); err != nil {
					fail(err.Error())
					return false, err
				}
			}
		case nodeapi.OpFlush:
			for anyPending() {
				if err := cut(); err != nil {
					fail(err.Error())
					return false, err
				}
			}
		case nodeapi.OpClose:
			if anyPending() {
				if err := cut(); err != nil {
					fail(err.Error())
					return false, err
				}
			}
			if err := proc.Stop(); err != nil {
				fail(err.Error())
				return false, err
			}
			conn.WriteResponse(nodeapi.Response{Op: nodeapi.OpClosed, Digest: digest.Sum()})
			return true, nil
		default:
			fail(fmt.Sprintf("unknown op %q", req.Op))
			return false, nil
		}
	}
}
