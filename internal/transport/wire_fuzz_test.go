package transport

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalMessage hammers the frame-body decoder with arbitrary
// bytes: a malformed or truncated frame from a Byzantine peer must fail
// cleanly — no panic, no runaway allocation — and anything that does
// decode must re-encode canonically (decode∘encode is the identity on
// the codec's image).
func FuzzUnmarshalMessage(f *testing.F) {
	valid, err := AppendMessage(nil, Message{
		From: 1, To: 2, Round: 3, Kind: "csm-result",
		Payload: []byte("payload"), Sig: bytes.Repeat([]byte{5}, 64),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalMessage(data)
		if err != nil {
			return
		}
		re, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, err := UnmarshalMessage(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if m2.From != m.From || m2.To != m.To || m2.Round != m.Round || m2.Kind != m.Kind ||
			!bytes.Equal(m2.Payload, m.Payload) || !bytes.Equal(m2.Sig, m.Sig) {
			t.Fatalf("decode/encode/decode not stable: %+v vs %+v", m, m2)
		}
	})
}

// FuzzReadFrame covers the length-prefixed stream framing: arbitrary
// byte streams (truncated prefixes, lying length fields, unknown frame
// types) must never panic the reader, and announced sizes beyond the cap
// must be rejected before allocation.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameDone, doneBody(7)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0, frameData})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, body, err := readFrame(r)
			if err != nil {
				return
			}
			switch typ {
			case frameDone:
				if _, err := parseDone(body); err != nil {
					_ = err // malformed done bodies are ignored by the read loop
				}
			case frameHello:
				if _, err := parseHello(body, 4, func(NodeID, string, []byte, []byte) bool { return true }); err != nil {
					_ = err
				}
			case frameData:
				if _, err := UnmarshalMessage(body); err != nil {
					_ = err
				}
			}
		}
	})
}
