package rs

import (
	"errors"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/poly"
)

func goldRing() *poly.Ring[uint64] { return poly.NewRing[uint64](field.NewGoldilocks()) }

func newTestCode(t *testing.T, ring *poly.Ring[uint64], n, k int) *Code[uint64] {
	t.Helper()
	pts, err := ring.Field().Elements(n)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCode(ring, pts, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randMsg(ring *poly.Ring[uint64], rng *rand.Rand, k int) poly.Poly[uint64] {
	msg := make(poly.Poly[uint64], k)
	for i := range msg {
		msg[i] = ring.Field().Rand(rng)
	}
	return ring.Normalize(msg)
}

// corrupt flips nerr distinct random positions to fresh random wrong values.
func corrupt(f field.Field[uint64], rng *rand.Rand, word []uint64, nerr int) []int {
	positions := rng.Perm(len(word))[:nerr]
	for _, p := range positions {
		orig := word[p]
		for f.Equal(word[p], orig) {
			word[p] = f.Rand(rng)
		}
	}
	return positions
}

func TestNewCodeValidation(t *testing.T) {
	ring := goldRing()
	pts, _ := ring.Field().Elements(5)
	if _, err := NewCode(ring, pts, 0); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewCode(ring, pts, 6); err == nil {
		t.Error("dim > n should fail")
	}
	if _, err := NewCode(ring, []uint64{1, 2, 1}, 2); err == nil {
		t.Error("duplicate points should fail")
	}
	c, err := NewCode(ring, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Length() != 5 || c.Dim() != 3 || c.MaxErrors() != 1 {
		t.Errorf("Length=%d Dim=%d MaxErrors=%d", c.Length(), c.Dim(), c.MaxErrors())
	}
}

func TestEncodeDegreeCheck(t *testing.T) {
	c := newTestCode(t, goldRing(), 6, 3)
	if _, err := c.Encode(poly.Poly[uint64]{1, 2, 3, 4}); err == nil {
		t.Error("over-degree message should fail")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	ring := goldRing()
	for _, tc := range []struct{ n, k int }{{5, 1}, {7, 3}, {16, 4}, {31, 11}, {64, 20}} {
		c := newTestCode(t, ring, tc.n, tc.k)
		for e := 0; e <= c.MaxErrors(); e++ {
			msg := randMsg(ring, rng, tc.k)
			word, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			want := corrupt(ring.Field(), rng, word, e)
			res, err := c.Decode(word)
			if err != nil {
				t.Fatalf("n=%d k=%d e=%d: %v", tc.n, tc.k, e, err)
			}
			if !ring.Equal(res.Message, msg) {
				t.Fatalf("n=%d k=%d e=%d: wrong message", tc.n, tc.k, e)
			}
			if len(res.ErrorsAt) != len(want) {
				t.Fatalf("n=%d k=%d e=%d: found %d errors, injected %d", tc.n, tc.k, e, len(res.ErrorsAt), len(want))
			}
		}
	}
}

func TestDecodeBWMatchesGao(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	ring := goldRing()
	for _, tc := range []struct{ n, k int }{{7, 3}, {15, 5}, {20, 8}} {
		c := newTestCode(t, ring, tc.n, tc.k)
		for e := 0; e <= c.MaxErrors(); e++ {
			msg := randMsg(ring, rng, tc.k)
			word, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			corrupt(ring.Field(), rng, word, e)
			gao, err := c.Decode(word)
			if err != nil {
				t.Fatalf("Gao n=%d k=%d e=%d: %v", tc.n, tc.k, e, err)
			}
			bw, err := c.DecodeBW(word)
			if err != nil {
				t.Fatalf("BW n=%d k=%d e=%d: %v", tc.n, tc.k, e, err)
			}
			if !ring.Equal(gao.Message, bw.Message) {
				t.Fatalf("n=%d k=%d e=%d: decoders disagree", tc.n, tc.k, e)
			}
		}
	}
}

func TestDecodeBeyondRadiusFails(t *testing.T) {
	// The paper's Table 2 boundary: decoding succeeds iff
	// 2b ≤ N - (K'-1) - 1 where K' is the code dimension. One error past the
	// radius must be rejected (with overwhelming probability the corrupted
	// word is not within distance MaxErrors of a different codeword; with
	// random corruption and these parameters a silent miscorrect is
	// essentially impossible, but we tolerate it by checking the decoded
	// message differs).
	rng := rand.New(rand.NewPCG(5, 6))
	ring := goldRing()
	c := newTestCode(t, ring, 20, 6) // radius 7
	for trial := 0; trial < 20; trial++ {
		msg := randMsg(ring, rng, 6)
		word, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		corrupt(ring.Field(), rng, word, c.MaxErrors()+1)
		res, err := c.Decode(word)
		if err == nil && ring.Equal(res.Message, msg) {
			t.Fatal("decoded correctly beyond the unique-decoding radius?")
		}
	}
}

func TestIsCodeword(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	ring := goldRing()
	c := newTestCode(t, ring, 10, 4)
	msg := randMsg(ring, rng, 4)
	word, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.IsCodeword(word)
	if !ok || !ring.Equal(got, msg) {
		t.Fatal("clean codeword not recognized")
	}
	word[3] = ring.Field().Add(word[3], 1)
	if _, ok := c.IsCodeword(word); ok {
		t.Fatal("corrupted word recognized as codeword")
	}
	if _, ok := c.IsCodeword(word[:5]); ok {
		t.Fatal("short word recognized as codeword")
	}
}

func TestDecodeSubsetErasuresAndErrors(t *testing.T) {
	// Partially synchronous CSM: only N-b results arrive and up to b of
	// those are wrong. Decode must succeed iff 2b ≤ (N-b) - (k-1) - 1.
	rng := rand.New(rand.NewPCG(9, 10))
	ring := goldRing()
	const n, k, b = 19, 4, 4 // N-b = 15, radius (15-4)/2 = 5 >= b: decodable
	c := newTestCode(t, ring, n, k)
	msg := randMsg(ring, rng, k)
	word, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	present := rng.Perm(n)[: n-b : n-b]
	vals := make([]uint64, len(present))
	for i, idx := range present {
		vals[i] = word[idx]
	}
	// Corrupt b of the present values.
	for i := 0; i < b; i++ {
		vals[i] = ring.Field().Add(vals[i], 1)
	}
	res, err := c.DecodeSubset(present, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Equal(res.Message, msg) {
		t.Fatal("subset decode recovered wrong message")
	}
	if len(res.ErrorsAt) != b {
		t.Fatalf("found %d errors, want %d", len(res.ErrorsAt), b)
	}
	for _, e := range res.ErrorsAt {
		found := false
		for i := 0; i < b; i++ {
			if present[i] == e {
				found = true
			}
		}
		if !found {
			t.Fatalf("error position %d not among corrupted indices", e)
		}
	}
	if _, err := c.DecodeSubset([]int{0, 1}, []uint64{1}); err == nil {
		t.Error("mismatched subset lengths should fail")
	}
	if _, err := c.DecodeSubset([]int{0, n}, []uint64{1, 2}); err == nil {
		t.Error("out-of-range subset index should fail")
	}
}

func TestDecodeWrongLength(t *testing.T) {
	c := newTestCode(t, goldRing(), 8, 3)
	if _, err := c.Decode(make([]uint64, 7)); err == nil {
		t.Error("wrong-length word should fail")
	}
	if _, err := c.DecodeBW(make([]uint64, 7)); err == nil {
		t.Error("wrong-length word should fail (BW)")
	}
}

func TestDecodeGF2m(t *testing.T) {
	f, err := field.NewGF2m(10)
	if err != nil {
		t.Fatal(err)
	}
	ring := poly.NewRing[uint64](f)
	rng := rand.New(rand.NewPCG(11, 12))
	c := newTestCode(t, ring, 24, 8)
	msg := randMsg(ring, rng, 8)
	word, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	corrupt(f, rng, word, c.MaxErrors())
	res, err := c.Decode(word)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Equal(res.Message, msg) {
		t.Fatal("GF(2^10) decode failed")
	}
}

func TestErrTooManyErrorsWrapped(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	ring := goldRing()
	c := newTestCode(t, ring, 8, 6) // radius 1
	msg := randMsg(ring, rng, 6)
	word, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	corrupt(ring.Field(), rng, word, 3)
	if _, err := c.Decode(word); !errors.Is(err, ErrTooManyErrors) {
		t.Errorf("want ErrTooManyErrors, got %v", err)
	}
}

func TestZeroRedundancyBW(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	ring := goldRing()
	c := newTestCode(t, ring, 5, 5) // e = 0
	msg := randMsg(ring, rng, 5)
	word, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.DecodeBW(word)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Equal(res.Message, msg) {
		t.Fatal("BW with zero redundancy failed on clean word")
	}
	// With zero redundancy every word is a codeword: corruption cannot be
	// detected, only decoded to a *different* message. This is why CSM
	// needs N > d(K-1) strictly (Table 2).
	word[0] = ring.Field().Add(word[0], 1)
	res2, err := c.DecodeBW(word)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Equal(res2.Message, msg) {
		t.Fatal("corrupted word decoded to the original message")
	}
}

func TestSolveLinear(t *testing.T) {
	g := field.NewGoldilocks()
	// 2x + y = 5; x + 3y = 5  =>  x = 2, y = 1.
	mat := [][]uint64{{2, 1}, {1, 3}}
	rhs := []uint64{5, 5}
	x, err := solveLinear[uint64](g, mat, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 || x[1] != 1 {
		t.Errorf("solution = %v", x)
	}
	// Inconsistent: x + y = 1; x + y = 2.
	if _, err := solveLinear[uint64](g, [][]uint64{{1, 1}, {1, 1}}, []uint64{1, 2}); err == nil {
		t.Error("inconsistent system should fail")
	}
	// Underdetermined: one equation, two unknowns; free var set to 0.
	x, err = solveLinear[uint64](g, [][]uint64{{0, 2}}, []uint64{6})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 3 {
		t.Errorf("underdetermined solution = %v", x)
	}
	if _, err := solveLinear[uint64](g, [][]uint64{{1}}, []uint64{1, 2}); err == nil {
		t.Error("row/rhs mismatch should fail")
	}
	out, err := solveLinear[uint64](g, nil, nil)
	if err != nil || out != nil {
		t.Errorf("empty system: %v %v", out, err)
	}
}

func TestMatVec(t *testing.T) {
	g := field.NewGoldilocks()
	mat := [][]uint64{{1, 2}, {3, 4}, {5, 6}}
	got, err := MatVec[uint64](g, mat, []uint64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{210, 430, 650}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := MatVec[uint64](g, mat, []uint64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestDecodePropertyRandom(t *testing.T) {
	// Property: for random (n, k, e <= radius, msg, error pattern), both
	// decoders recover the message and the exact error set.
	rng := rand.New(rand.NewPCG(17, 18))
	ring := goldRing()
	for trial := 0; trial < 60; trial++ {
		n := 6 + int(rng.Uint64N(30))
		k := 1 + int(rng.Uint64N(uint64(n)))
		c := newTestCode(t, ring, n, k)
		e := int(rng.Uint64N(uint64(c.MaxErrors() + 1)))
		msg := randMsg(ring, rng, k)
		word, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		injected := corrupt(ring.Field(), rng, word, e)
		res, err := c.Decode(word)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d e=%d): %v", trial, n, k, e, err)
		}
		if !ring.Equal(res.Message, msg) {
			t.Fatalf("trial %d: wrong message", trial)
		}
		if len(res.ErrorsAt) != len(injected) {
			t.Fatalf("trial %d: error count %d != %d", trial, len(res.ErrorsAt), len(injected))
		}
	}
}
