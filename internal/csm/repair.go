package csm

import (
	"fmt"
	"sort"

	"codedsm/internal/field"
)

// RunQueue executes a queue of command batches with liveness: a batch whose
// round was skipped (a Byzantine leader pushed a garbage proposal through
// consensus) is retried under the next round's leader, so every client
// command is eventually executed — the paper's Liveness requirement
// (Section 2.1). maxAttempts bounds retries per batch.
func (c *Cluster[E]) RunQueue(batches [][][]E, maxAttempts int) ([]*RoundResult[E], error) {
	if maxAttempts < 1 {
		maxAttempts = c.cfg.N // a full leader rotation
	}
	out := make([]*RoundResult[E], 0, len(batches))
	for bi, batch := range batches {
		executed := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			res, err := c.ExecuteRound(batch)
			if err != nil {
				return out, fmt.Errorf("csm: batch %d attempt %d: %w", bi, attempt, err)
			}
			if !res.Skipped {
				out = append(out, res)
				executed = true
				break
			}
		}
		if !executed {
			return out, fmt.Errorf("csm: batch %d not executed within %d attempts: %w",
				bi, maxAttempts, ErrRoundStuck)
		}
	}
	return out, nil
}

// RepairNode reconstructs node i's coded state from the *other* nodes'
// coded states. The vector (S̃_1, ..., S̃_N) is itself a Reed-Solomon
// codeword of u_t (degree K-1) at the alphas, so any N-1 coordinates with
// at most (N-1-K)/2 corruptions determine u_t; the repaired node re-derives
// S̃_i = u_t(α_i) without downloading all K states — this is what makes
// node replacement cheap in CSM, in contrast to the re-download cost that
// rules out frequent group rotation in random-allocation schemes
// (Section 7, Remark 5).
//
// Byzantine nodes contribute garbage states to the repair, which the
// decoder corrects like any other error.
func (c *Cluster[E]) RepairNode(i int) error {
	if i < 0 || i >= c.cfg.N {
		return fmt.Errorf("csm: repair: node %d out of range", i)
	}
	stateLen := c.tr.StateLen()
	// Collect the other nodes' coded states; Byzantine nodes lie.
	indices := make([]int, 0, c.cfg.N-1)
	contributions := make([][]E, 0, c.cfg.N-1)
	for j, n := range c.nodes {
		if j == i {
			continue
		}
		indices = append(indices, j)
		if n.behavior != Honest {
			contributions = append(contributions, field.RandVec(c.cfg.BaseField, c.rng, stateLen))
			continue
		}
		contributions = append(contributions, append([]E(nil), n.codedState...))
	}
	sort.Sort(&repairSorter[E]{idx: indices, vals: contributions})
	// Coded states are evaluations of u_t (degree K-1): dimension K, which
	// is ResultDim(1) by construction.
	dec, err := c.code.DecodeOutputsSubset(indices, contributions, 1)
	if err != nil {
		return fmt.Errorf("csm: repair of node %d: %w", i, err)
	}
	// dec.Outputs are the K uncoded states; re-encode coordinate i.
	repaired := make([]E, stateLen)
	for comp := 0; comp < stateLen; comp++ {
		vals := make([]E, c.cfg.K)
		for k := 0; k < c.cfg.K; k++ {
			vals[k] = dec.Outputs[k][comp]
		}
		v, err := c.code.EncodeAt(vals, i)
		if err != nil {
			return err
		}
		repaired[comp] = v
	}
	c.nodes[i].codedState = repaired
	return nil
}

// repairSorter keeps contributions aligned with their node indices.
type repairSorter[E comparable] struct {
	idx  []int
	vals [][]E
}

func (s *repairSorter[E]) Len() int           { return len(s.idx) }
func (s *repairSorter[E]) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *repairSorter[E]) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Corrupt changes a node's behaviour mid-run, modelling the dynamic
// (adaptive) adversary of Section 7: corruptions may move between nodes
// across rounds, but the *simultaneous* corruption count may never exceed
// the fault budget b. Pass Honest to release a node (the adversary
// "un-corrupts" it to move elsewhere, as in post-facto corruption models).
//
// CSM's security holds against this adversary — unlike random allocation,
// there is no small committee whose capture matters; only the global count
// does. TestDynamicAdversary exercises exactly this.
func (c *Cluster[E]) Corrupt(node int, behavior Behavior) error {
	if node < 0 || node >= c.cfg.N {
		return fmt.Errorf("csm: corrupt: node %d out of range", node)
	}
	corrupted := 0
	for i, n := range c.nodes {
		b := n.behavior
		if i == node {
			b = behavior
		}
		if b != Honest {
			corrupted++
		}
	}
	if corrupted > c.cfg.MaxFaults {
		return fmt.Errorf("csm: corrupting node %d would exceed the fault budget b=%d",
			node, c.cfg.MaxFaults)
	}
	c.nodes[node].behavior = behavior
	if c.cfg.Byzantine == nil {
		c.cfg.Byzantine = make(map[int]Behavior)
	}
	if behavior == Honest {
		delete(c.cfg.Byzantine, node)
	} else {
		c.cfg.Byzantine[node] = behavior
	}
	return nil
}
