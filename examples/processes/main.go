// Processes: the multi-process deployment harness. Where every other
// example simulates a whole cluster inside one process, this one runs a
// real N-process cluster over localhost TCP sockets and proves it
// faithful to the simulation:
//
//  1. run the workload on the in-memory simulated cluster (the
//     deterministic oracle) and digest its outputs;
//  2. `csmnode bootstrap` an N-node localhost cluster, start the N
//     csmnode processes, and drive the same workload through the
//     sequencer's Submit ingress over a socket;
//  3. require the outputs streamed back — and the run digest every node
//     prints at exit — to be bit-identical to the oracle's.
//
// Any divergence (or a hung cluster: everything runs under a deadline)
// exits non-zero, which is what `make smoke-processes` and the CI
// multiprocess job assert.
//
//	go build -o bin/csmnode ./cmd/csmnode
//	go run ./examples/processes -csmnode bin/csmnode
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"codedsm"
	"codedsm/internal/nodeapi"
)

func main() {
	csmnode := flag.String("csmnode", "csmnode", "path to the csmnode binary")
	n := flag.Int("n", 4, "cluster size")
	k := flag.Int("k", 2, "number of state machines")
	degree := flag.Int("degree", 2, "polynomial-register degree")
	rounds := flag.Int("rounds", 8, "workload rounds to submit")
	seed := flag.Uint64("seed", 4242, "workload and cluster seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "deadline for the whole scenario")
	flag.Parse()
	log.SetFlags(0)

	deadline := time.AfterFunc(*timeout, func() {
		log.Fatalf("FAIL: scenario exceeded %v", *timeout)
	})
	defer deadline.Stop()

	gold := codedsm.NewGoldilocks()
	workload := codedsm.RandomWorkload[uint64](gold, *rounds, *k, 1, *seed)

	// 1. The in-memory oracle run.
	oracle, oracleOutputs := oracleDigest(gold, workload, *n, *k, *degree, *seed)
	log.Printf("oracle:   %d rounds on the simulated cluster, digest=%s", *rounds, oracle)

	// 2. Bootstrap and start the real processes.
	dir, err := os.MkdirTemp("", "csmnode-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bootstrap := exec.Command(*csmnode, "bootstrap", "-dir", dir,
		"-n", fmt.Sprint(*n), "-k", fmt.Sprint(*k), "-degree", fmt.Sprint(*degree),
		"-seed", fmt.Sprint(*seed), "-serve")
	bootstrap.Stderr = os.Stderr
	if err := bootstrap.Run(); err != nil {
		log.Fatalf("csmnode bootstrap: %v", err)
	}
	clientAddr := clientListenAddr(filepath.Join(dir, "node0.json"))

	procs := make([]*exec.Cmd, *n)
	outputs := make([]*strings.Builder, *n)
	for i := range procs {
		args := []string{"run", "-config", filepath.Join(dir, fmt.Sprintf("node%d.json", i))}
		if i == 0 {
			args = append(args, "-serve")
		}
		procs[i] = exec.Command(*csmnode, args...)
		outputs[i] = &strings.Builder{}
		procs[i].Stdout = outputs[i]
		procs[i].Stderr = os.Stderr
		if err := procs[i].Start(); err != nil {
			log.Fatalf("starting node %d: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
		}
	}()
	log.Printf("cluster:  %d csmnode processes up, ingress at %s", *n, clientAddr)

	// 3. Drive the workload through the socket ingress, round by round,
	// checking every streamed output against the oracle as it arrives.
	client, err := nodeapi.Dial(clientAddr, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	for r, cmds := range workload {
		for m, cmd := range cmds {
			if err := client.Submit(m, cmd); err != nil {
				log.Fatalf("submit round %d machine %d: %v", r, m, err)
			}
		}
		for range cmds {
			resp, err := client.ReadResult()
			if err != nil {
				log.Fatalf("reading results of round %d: %v", r, err)
			}
			want := oracleOutputs[resp.Round][resp.Machine]
			if !equalU64(resp.Output, want) {
				log.Fatalf("FAIL: round %d machine %d: cluster output %v, oracle %v",
					resp.Round, resp.Machine, resp.Output, want)
			}
		}
	}
	remoteDigest, err := client.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ingress:  %d rounds submitted over the socket, digest=%s", *rounds, remoteDigest)

	// 4. Every process must exit cleanly and print the oracle digest.
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			log.Fatalf("FAIL: node %d exited with %v\n%s", i, err, outputs[i])
		}
	}
	if remoteDigest != oracle {
		log.Fatalf("FAIL: ingress digest %s, oracle %s", remoteDigest, oracle)
	}
	for i := range procs {
		d := digestLine(outputs[i].String())
		if d != oracle {
			log.Fatalf("FAIL: node %d digest %s, oracle %s", i, d, oracle)
		}
	}
	log.Printf("PASS: %d processes x %d rounds bit-identical to the in-memory oracle", *n, *rounds)
}

// oracleDigest runs the workload on the simulated cluster and returns
// the canonical digest plus the per-round outputs for streaming checks.
func oracleDigest(gold codedsm.Goldilocks, workload [][][]uint64, n, k, degree int, seed uint64) (string, [][][]uint64) {
	cluster, err := codedsm.Open(gold,
		func(f codedsm.Field[uint64]) (*codedsm.Transition[uint64], error) {
			return codedsm.NewPolynomialRegister(f, degree)
		},
		codedsm.WithNodes(n),
		codedsm.WithMachines(k),
		codedsm.WithFaults(0),
		codedsm.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	results, err := cluster.Run(workload)
	if err != nil {
		log.Fatal(err)
	}
	digest := nodeapi.NewDigest()
	outputs := make([][][]uint64, len(results))
	for r, res := range results {
		if !res.Correct {
			log.Fatalf("oracle round %d incorrect", r)
		}
		digest.AddRound(r, res.Outputs)
		outputs[r] = res.Outputs
	}
	return digest.Sum(), outputs
}

// clientListenAddr extracts client_listen from the sequencer's config.
func clientListenAddr(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var cfg struct {
		ClientListen string `json:"client_listen"`
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if cfg.ClientListen == "" {
		log.Fatalf("no client_listen in %s (bootstrap without -serve?)", path)
	}
	return cfg.ClientListen
}

// digestLine extracts the digest=<hex> line a csmnode prints at exit.
func digestLine(out string) string {
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		if d, ok := strings.CutPrefix(sc.Text(), "digest="); ok {
			return d
		}
	}
	return "<no digest line>"
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
