package codedsm_test

import (
	"fmt"
	"log"

	"codedsm"
)

// Example runs three coded bank accounts on twelve nodes with two
// Byzantine ones, and shows the decoded balances plus the identified liars.
func Example() {
	gold := codedsm.NewGoldilocks()
	cluster, err := codedsm.NewCluster(codedsm.ClusterConfig[uint64]{
		BaseField:     gold,
		NewTransition: codedsm.NewBank[uint64],
		K:             3, N: 12, MaxFaults: 2,
		Byzantine: map[int]codedsm.Behavior{
			4: codedsm.WrongResult,
			9: codedsm.WrongResult,
		},
		InitialStates: [][]uint64{{1000}, {2000}, {3000}},
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.ExecuteRound([][]uint64{{100}, {200}, {300}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct:", res.Correct)
	fmt.Println("liars caught:", res.FaultyDetected)
	for k, out := range res.Outputs {
		fmt.Printf("account %d: %d\n", k, out[0])
	}
	// Output:
	// correct: true
	// liars caught: [4 9]
	// account 0: 1100
	// account 1: 2200
	// account 2: 3300
}

// ExampleFromExprs builds a custom degree-2 machine from polynomial
// expressions and runs it uncoded.
func ExampleFromExprs() {
	gold := codedsm.NewGoldilocks()
	tr, err := codedsm.FromExprs[uint64](gold, "tally",
		[]string{"s"}, []string{"x"},
		[]string{"s + x^2"}, []string{"s + x^2"})
	if err != nil {
		log.Fatal(err)
	}
	m, err := codedsm.NewMachine(tr, []uint64{0})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []uint64{1, 2, 3} {
		if _, err := m.Step([]uint64{v}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("degree:", tr.Degree())
	fmt.Println("tally:", m.State()[0])
	// Output:
	// degree: 2
	// tally: 14
}

// ExampleCommitteeSize shows the Section 6.1 auditor-count formula.
func ExampleCommitteeSize() {
	j, err := codedsm.CommitteeSize(0.001, 1.0/3.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("J = %d auditors for epsilon=0.001, mu=1/3\n", j)
	// Output:
	// J = 7 auditors for epsilon=0.001, mu=1/3
}

// ExampleSyncMaxMachines shows the Table 2 capacity bound.
func ExampleSyncMaxMachines() {
	// N=31 nodes, b=5 faults, degree-2 transitions:
	fmt.Println(codedsm.SyncMaxMachines(31, 5, 2))
	// Output:
	// 11
}
