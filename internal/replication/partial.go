package replication

import (
	"fmt"
	"math/rand/v2"

	"codedsm/internal/field"
	"codedsm/internal/pool"
	"codedsm/internal/sm"
)

// PartialCluster replicates machine k only at its group of q = N/K nodes.
// Storage efficiency rises to γ = K but security falls to (q-1)/2 per
// machine: an adversary that concentrates ⌈q/2⌉ colluding nodes in one
// group controls that machine's clients (Section 3).
type PartialCluster[E comparable] struct {
	cfg      Config[E]
	counting *field.Counting[E]
	q        int
	group    []int // node -> machine index
	replicas []*sm.Machine[E]
	oracle   []*sm.Machine[E]
	rng      *rand.Rand
}

// NewPartial builds a partial-replication cluster; N must be divisible by K.
func NewPartial[E comparable](cfg Config[E]) (*PartialCluster[E], error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	if cfg.N%cfg.K != 0 {
		return nil, fmt.Errorf("%w: N=%d not divisible by K=%d", errConfig, cfg.N, cfg.K)
	}
	counting := field.NewCounting(cfg.BaseField)
	tr, err := cfg.NewTransition(counting)
	if err != nil {
		return nil, err
	}
	oracleTr, err := cfg.NewTransition(cfg.BaseField)
	if err != nil {
		return nil, err
	}
	initial := initialStates(cfg, tr.StateLen())
	c := &PartialCluster[E]{
		cfg:      cfg,
		counting: counting,
		q:        cfg.N / cfg.K,
		group:    make([]int, cfg.N),
		replicas: make([]*sm.Machine[E], cfg.N),
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0x9a57)),
	}
	if c.oracle, err = machines(oracleTr, initial); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		k := i / c.q
		c.group[i] = k
		m, err := sm.NewMachine(tr, initial[k])
		if err != nil {
			return nil, err
		}
		c.replicas[i] = m
	}
	counting.Reset()
	return c, nil
}

// GroupSize returns q = N/K.
func (c *PartialCluster[E]) GroupSize() int { return c.q }

// GroupOf returns the machine index node i serves.
func (c *PartialCluster[E]) GroupOf(i int) int { return c.group[i] }

// Security returns β_partial = (q-1)/2 (or (q-1)/3 partially synchronous):
// the adversary only needs to corrupt a majority of one group.
func (c *PartialCluster[E]) Security() int { return replicaSecurity(c.q, c.cfg.Mode) }

// StorageEfficiency returns γ_partial = K.
func (c *PartialCluster[E]) StorageEfficiency() float64 { return float64(c.cfg.K) }

// OpCounts returns total field operations across all nodes.
func (c *PartialCluster[E]) OpCounts() field.OpCounts { return c.counting.Counts() }

// OracleStates returns the ground-truth machine states.
func (c *PartialCluster[E]) OracleStates() [][]E { return states(c.oracle) }

// ExecuteBatch runs a batch of consecutive rounds, mirroring
// csm.Cluster.ExecuteBatch for like-for-like harnesses.
func (c *PartialCluster[E]) ExecuteBatch(batch [][][]E) ([]*RoundResult[E], error) {
	return batchRounds(batch, c.ExecuteRound)
}

// ExecuteRound executes one command per machine within its group and
// applies the majority rule per group: acceptance threshold is a majority
// of the group, (q+2)/2 rounded down... precisely floor(q/2)+1.
func (c *PartialCluster[E]) ExecuteRound(cmds [][]E) (*RoundResult[E], error) {
	if len(cmds) != c.cfg.K {
		return nil, fmt.Errorf("replication: %d commands for K=%d", len(cmds), c.cfg.K)
	}
	oracleOut, err := step(c.oracle, cmds)
	if err != nil {
		return nil, err
	}
	lies := lieVectors(c.cfg.BaseField, c.rng, c.cfg.K, len(oracleOut[0]))
	// Compute phase (parallel): each honest node steps its group's machine;
	// vote casting stays in node order for determinism.
	nodeOuts := make([][]E, c.cfg.N)
	err = pool.Run(c.cfg.Parallelism, c.cfg.N, func(i int) error {
		switch c.cfg.Byzantine[i] {
		case Crash, Colluding:
			return nil
		}
		out, serr := c.replicas[i].Step(cmds[c.group[i]])
		if serr != nil {
			return serr
		}
		nodeOuts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	votes := make([]map[string]*vote[E], c.cfg.K)
	for k := range votes {
		votes[k] = make(map[string]*vote[E])
	}
	for i := 0; i < c.cfg.N; i++ {
		k := c.group[i]
		switch c.cfg.Byzantine[i] {
		case Crash:
			continue
		case Colluding:
			castVote(c.cfg.BaseField, votes[k], lies[k])
		default:
			castVote(c.cfg.BaseField, votes[k], nodeOuts[i])
		}
	}
	return tally(c.cfg.BaseField, votes, oracleOut, c.q/2+1), nil
}

// ConcentratedAttack returns a Byzantine map that corrupts the smallest
// number of nodes sufficient to control machine `target`'s group — the
// attack that collapses partial replication's security to Θ(N/K).
func ConcentratedAttack(n, k, target int) (map[int]Behavior, error) {
	if k < 1 || n%k != 0 {
		return nil, fmt.Errorf("%w: N=%d K=%d", errConfig, n, k)
	}
	q := n / k
	if target < 0 || target >= k {
		return nil, fmt.Errorf("%w: target machine %d", errConfig, target)
	}
	out := make(map[int]Behavior, q/2+1)
	for i := 0; i < q/2+1; i++ {
		out[target*q+i] = Colluding
	}
	return out, nil
}
