// Package consensus defines the interface between CSM's consensus phase and
// its execution phase, plus the drivers that run a protocol instance. CSM
// deliberately reuses standard consensus protocols ("CSM uses the same
// consensus protocols to decide on the input commands", Section 1): the
// Dolev-Strong authenticated broadcast for synchronous networks
// (sub-package dolevstrong, tolerating any b < N) and PBFT for partially
// synchronous networks (sub-package pbft, requiring N >= 3b+1).
//
// Protocols are written once against the Transport interface and run
// unchanged over two drivers: Run ticks all N nodes of a simulated
// lock-step Network inside one process (the deterministic oracle), and
// RunLink ticks one node over its own transport.Link — the per-process
// driver the multi-process engine uses, where the link's Step barrier
// replaces the simulator's global Network.Step.
package consensus

import (
	"errors"
	"fmt"

	"codedsm/internal/transport"
)

// ErrNoDecision is returned when a protocol instance exhausts its round
// budget without every honest node deciding. Errors carrying it are
// *NoDecisionError values naming the undecided nodes.
var ErrNoDecision = errors.New("consensus: no decision within round budget")

// NoDecisionError reports which nodes had not decided when the round
// budget ran out. It unwraps to ErrNoDecision, so errors.Is checks against
// the sentinel keep working.
type NoDecisionError struct {
	// Undecided lists the waited-for nodes without a decision, ascending.
	Undecided []transport.NodeID
}

func (e *NoDecisionError) Error() string {
	return fmt.Sprintf("consensus: no decision within round budget (undecided nodes %v)", e.Undecided)
}

func (e *NoDecisionError) Unwrap() error { return ErrNoDecision }

// Transport is the surface a protocol participant drives: identity,
// broadcast, and roster-wide blob signatures. A transport.Link satisfies
// it directly (one process per node, real or simulated sockets), and
// NewNetTransport adapts one endpoint of the simulated Network for the
// single-process lock-step driver. Protocols only ever broadcast — the
// synchronous model delivers to everyone in the next round either way.
type Transport interface {
	// Self is the node this transport belongs to.
	Self() transport.NodeID
	// N is the cluster size.
	N() int
	// Broadcast transmits a signed message to every other node.
	Broadcast(kind string, payload []byte) error
	// SignBlob signs protocol content under a domain-separation context;
	// the signature survives re-broadcast by other nodes.
	SignBlob(context string, data []byte) []byte
	// VerifyBlob verifies a blob signature produced by node id's SignBlob.
	VerifyBlob(id transport.NodeID, context string, data, sig []byte) bool
}

// A Link is a Transport; protocols ported to Transport run over TCP
// unchanged.
var _ Transport = transport.Link(nil)

// netTransport adapts one endpoint of a simulated Network to Transport.
type netTransport struct {
	net *transport.Network
	ep  *transport.Endpoint
}

// NewNetTransport returns node id's Transport over the simulated network:
// the adapter the lock-step Run driver (and any single-process test)
// hands to protocol constructors.
func NewNetTransport(net *transport.Network, id transport.NodeID) (Transport, error) {
	if net == nil {
		return nil, fmt.Errorf("consensus: nil network")
	}
	ep, err := net.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &netTransport{net: net, ep: ep}, nil
}

func (t *netTransport) Self() transport.NodeID { return t.ep.ID() }
func (t *netTransport) N() int                 { return t.net.N() }

func (t *netTransport) Broadcast(kind string, payload []byte) error {
	return t.ep.Broadcast(kind, payload)
}

func (t *netTransport) SignBlob(context string, data []byte) []byte {
	return t.ep.SignBlob(context, data)
}

func (t *netTransport) VerifyBlob(id transport.NodeID, context string, data, sig []byte) bool {
	return t.net.VerifyBlob(id, context, data, sig)
}

// Node is one participant in a lock-step protocol instance. Tick is called
// once per network round with the messages delivered this round; the node
// reacts by broadcasting through its Transport.
type Node interface {
	// Tick processes one round.
	Tick(inbox []transport.Message) error
	// Decided returns the decided value once the node has terminated.
	Decided() ([]byte, bool)
}

// Run drives a set of nodes in lock step until every node in waitFor has
// decided or maxRounds have elapsed. Nodes not in waitFor (e.g. Byzantine
// ones simulated by adversarial Node implementations) still get ticks.
func Run(net *transport.Network, nodes []Node, waitFor []int, maxRounds int) error {
	if len(waitFor) == 0 {
		return fmt.Errorf("consensus: empty waitFor set")
	}
	endpoints := make([]*transport.Endpoint, len(nodes))
	for i := range nodes {
		e, err := net.Endpoint(transport.NodeID(i))
		if err != nil {
			return err
		}
		endpoints[i] = e
	}
	for r := 0; r < maxRounds; r++ {
		for i, n := range nodes {
			if n == nil {
				continue
			}
			if err := n.Tick(endpoints[i].Receive()); err != nil {
				return fmt.Errorf("consensus: node %d round %d: %w", i, r, err)
			}
		}
		net.Step()
		done := true
		for _, i := range waitFor {
			if nodes[i] == nil {
				continue
			}
			if _, ok := nodes[i].Decided(); !ok {
				done = false
				break
			}
		}
		if done {
			return nil
		}
	}
	undecided := make([]transport.NodeID, 0, len(waitFor))
	for _, i := range waitFor {
		if nodes[i] == nil {
			continue
		}
		if _, ok := nodes[i].Decided(); !ok {
			undecided = append(undecided, transport.NodeID(i))
		}
	}
	return &NoDecisionError{Undecided: undecided}
}

// RunLink drives one participant over its own Link until it decides or
// maxTicks have elapsed, returning the decided value. Each tick processes
// the previous round's inbox and ends with a Step; the tick a node decides
// in consumes its inbox but does not step, so in a lock-step run every
// honest node leaves its instance on the same link round — the property
// that lets the execution phase follow consensus without an extra
// synchronization exchange.
func RunLink(link transport.Link, node Node, maxTicks int) ([]byte, error) {
	var inbox []transport.Message
	for tick := 0; tick < maxTicks; tick++ {
		if err := node.Tick(inbox); err != nil {
			return nil, fmt.Errorf("consensus: node %d tick %d: %w", link.Self(), tick, err)
		}
		if v, ok := node.Decided(); ok {
			return v, nil
		}
		msgs, err := link.Step()
		if err != nil {
			return nil, err
		}
		inbox = msgs
	}
	return nil, &NoDecisionError{Undecided: []transport.NodeID{link.Self()}}
}
