// Durable coded state: the csm side of the internal/wal layer.
//
// Both engines persist the same two things — the decided consensus
// batches (write-ahead, before execution) and the per-round results of
// applying them — but they recover differently:
//
//   - The in-process Cluster logs every decided batch (including
//     skipped ones, so the round/instance counters replay identically)
//     and snapshots the full cluster state — every node's coded share,
//     the oracle machines, membership behaviors, and the churn cursor.
//     Recovery loads the newest valid snapshot and re-executes the
//     logged batches: the log entry IS the consensus decision, so
//     replay bypasses the consensus phase and feeds the agreed commands
//     straight to the execution engine.
//
//   - A NodeProcess cannot re-execute commands alone: recovering the
//     next coded share requires decoding all N results, which one
//     process cannot do offline (f∘u has degree d(K-1), not K-1). Its
//     applied records therefore carry the node's own next share, the
//     marshaled run-digest state, and the decoded outputs; replay is a
//     pure state restore. The batch records remain the write-ahead
//     intent — and the torn-write fodder the fault harness aims at.
//     Whatever round skew a crash leaves between nodes is reconciled by
//     NodeProcess.Recover (remote.go): stale-but-present shares catch
//     up via lcc.RepairShare from peers, only for the missing delta.
package csm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"codedsm/internal/field"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
	"codedsm/internal/wal"
)

// DurabilityConfig enables the durable state layer rooted at Dir.
type DurabilityConfig struct {
	// Dir is the data directory (created if missing). One directory
	// belongs to one node (remote engine) or one cluster (in-process).
	Dir string
	// Sync selects the WAL fsync policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SnapshotEvery is the snapshot cadence in executed rounds
	// (default 32). Snapshots rotate atomically; the WAL segment rolls
	// with each snapshot generation and the previous generation is kept
	// as the torn-rotation fallback.
	SnapshotEvery int
}

func (d DurabilityConfig) normalized() DurabilityConfig {
	if d.SnapshotEvery <= 0 {
		d.SnapshotEvery = 32
	}
	return d
}

// WAL record types (the type byte of each wal record).
const (
	recNodeBatch    byte = 1 // remote: decided batch, write-ahead
	recNodeApplied  byte = 2 // remote: post-round share + digest + outputs + deciding protocol
	recClusterBatch byte = 3 // in-process: decided batch, write-ahead
)

// ---- fixed binary payload codec ----
//
// Same conventions as the transport wire format and the result codec in
// csm.go: little-endian fixed-width integers, length-prefixed vectors,
// caps checked before allocation.

const maxDurVec = 1 << 24 // elements; far above any real state vector

type bwriter struct{ b []byte }

func (w *bwriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *bwriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *bwriter) u8(v byte)    { w.b = append(w.b, v) }
func (w *bwriter) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *bwriter) vec(v []uint64) {
	w.u32(uint32(len(v)))
	for _, e := range v {
		w.u64(e)
	}
}

type breader struct {
	b    []byte
	off  int
	fail bool
}

func (r *breader) u64() uint64 {
	if r.fail || r.off+8 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *breader) u32() uint32 {
	if r.fail || r.off+4 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *breader) u8() byte {
	if r.fail || r.off+1 > len(r.b) {
		r.fail = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *breader) bytes() []byte {
	n := int(r.u32())
	if r.fail || n < 0 || r.off+n > len(r.b) {
		r.fail = true
		return nil
	}
	out := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return out
}

func (r *breader) vec() []uint64 {
	n := int(r.u32())
	if r.fail || n > maxDurVec || r.off+8*n > len(r.b) {
		r.fail = true
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return out
}

func (r *breader) done() bool { return !r.fail && r.off == len(r.b) }

// vecToWire converts a field vector to its canonical uint64 form.
func vecToWire[E comparable](f field.Field[E], vec []E) []uint64 {
	out := make([]uint64, len(vec))
	for i, e := range vec {
		out[i] = f.Uint64(e)
	}
	return out
}

// vecFromWire converts canonical uint64 values into field elements.
func vecFromWire[E comparable](f field.Field[E], vals []uint64) []E {
	out := make([]E, len(vals))
	for i, v := range vals {
		out[i] = f.FromUint64(v)
	}
	return out
}

// ---- per-node durable store (remote engine) ----

// appliedState is one round's durable node state: the share and digest
// after executing the round, plus the round's decoded outputs (kept for
// serving catch-up deltas to stale peers).
type appliedState struct {
	share   []uint64
	digest  []byte
	outputs [][]uint64
}

// nodeStore is one NodeProcess's durable state: the current WAL
// segment, the recovered position, and the retained per-round applied
// window (current + previous snapshot generation) that Recover serves
// deltas — and performs rollbacks — from.
type nodeStore struct {
	cfg wal.SyncPolicy
	dir string
	log *wal.Log
	seq uint64

	// proto is the consensus protocol this node decides batches under;
	// every applied record notes it, and replaying a record written under
	// a different protocol is a typed error (protoErr) — the directory
	// belongs to a differently-configured cluster.
	proto    ConsensusKind
	protoErr error

	snapEvery int
	lastSnap  int // round of the newest snapshot
	prevSnap  int // round of the previous snapshot (retention floor)
	round     int // recovered executed-round count
	share     []uint64
	digest    []byte
	applied   map[int]appliedState // executed round -> state after it
	appendBuf bwriter
}

func openNodeStore(cfg DurabilityConfig, proto ConsensusKind) (*nodeStore, error) {
	cfg = cfg.normalized()
	if cfg.Dir == "" {
		return nil, errors.New("csm: durability: empty data directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &nodeStore{
		cfg:       cfg.Sync,
		dir:       cfg.Dir,
		proto:     proto,
		snapEvery: cfg.SnapshotEvery,
		applied:   make(map[int]appliedState),
	}
	seq, payload, err := wal.LoadSnapshot(cfg.Dir)
	switch {
	case errors.Is(err, wal.ErrNoSnapshot):
		// Cold start: generation 0, everything empty.
	case err != nil:
		return nil, err
	default:
		r := &breader{b: payload}
		round := int(r.u64())
		share := r.vec()
		digest := r.bytes()
		if !r.done() {
			return nil, fmt.Errorf("csm: durability: corrupt node snapshot payload in %s", cfg.Dir)
		}
		s.seq = seq
		s.round, s.share, s.digest = round, share, digest
		s.lastSnap, s.prevSnap = round, round
	}
	// The previous generation's segment extends the retained applied
	// window below the newest snapshot (read-only: records only).
	if s.seq > 0 {
		s.scanSegment(filepath.Join(cfg.Dir, wal.SegmentName(s.seq-1)), false)
	}
	log, recs, err := wal.Open(filepath.Join(cfg.Dir, wal.SegmentName(s.seq)), cfg.Sync)
	if err != nil {
		return nil, err
	}
	s.log = log
	for _, rec := range recs {
		s.absorbRecord(rec, true)
	}
	if s.protoErr != nil {
		log.Close()
		return nil, s.protoErr
	}
	return s, nil
}

// scanSegment reads a retired segment's applied records into the
// retained window. Missing or torn files are fine — the window is a
// best-effort cache for peer catch-up, bounded by the snapshots.
func (s *nodeStore) scanSegment(path string, advance bool) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	wal.Scan(f, func(rec wal.Record) error {
		s.absorbRecord(rec, advance)
		return nil
	})
}

// absorbRecord replays one WAL record into the in-memory state. With
// advance set, applied records move the recovered position forward;
// otherwise they only populate the retained window.
func (s *nodeStore) absorbRecord(rec wal.Record, advance bool) {
	if rec.Type != recNodeApplied {
		return // batch records are write-ahead intent, not state
	}
	r := &breader{b: rec.Payload}
	round := int(r.u64())
	proto := ConsensusKind(r.u8())
	share := r.vec()
	digest := r.bytes()
	k := int(r.u32())
	if r.fail || k < 0 || k > maxDurVec {
		return
	}
	outputs := make([][]uint64, k)
	for i := range outputs {
		outputs[i] = r.vec()
	}
	if !r.done() {
		return
	}
	if proto != s.proto && s.protoErr == nil {
		s.protoErr = fmt.Errorf("%w: applied record for round %d was decided by %v, node is configured for %v (in %s)",
			ErrConsensusMismatch, round, proto, s.proto, s.dir)
		return
	}
	s.applied[round] = appliedState{share: share, digest: digest, outputs: outputs}
	if advance && round+1 > s.round {
		s.round = round + 1
		s.share = share
		s.digest = digest
	}
}

// appendBatch logs a decided batch before execution (write-ahead).
func (s *nodeStore) appendBatch(round int, payload []byte) error {
	w := &s.appendBuf
	w.b = w.b[:0]
	w.u64(uint64(round))
	w.bytes(payload)
	return s.log.Append(recNodeBatch, w.b)
}

// appendApplied logs one executed round's resulting state, stamped with
// the protocol that decided the round's batch.
func (s *nodeStore) appendApplied(round int, share []uint64, digest []byte, outputs [][]uint64) error {
	w := &s.appendBuf
	w.b = w.b[:0]
	w.u64(uint64(round))
	w.u8(byte(s.proto))
	w.vec(share)
	w.bytes(digest)
	w.u32(uint32(len(outputs)))
	for _, out := range outputs {
		w.vec(out)
	}
	s.applied[round] = appliedState{share: share, digest: digest, outputs: outputs}
	s.round = round + 1
	s.share, s.digest = share, digest
	return s.log.Append(recNodeApplied, w.b)
}

// maybeSnapshot rotates to a new snapshot generation when the cadence
// is due (or force is set): write the snapshot atomically, roll the WAL
// segment, and prune the retained window below the previous snapshot.
func (s *nodeStore) maybeSnapshot(round int, share []uint64, digest []byte, force bool) error {
	if !force && round-s.lastSnap < s.snapEvery {
		return nil
	}
	var w bwriter
	w.u64(uint64(round))
	w.vec(share)
	w.bytes(digest)
	seq := s.seq + 1
	if err := wal.WriteSnapshot(s.dir, seq, w.b); err != nil {
		return err
	}
	if err := s.log.Close(); err != nil {
		return err
	}
	log, _, err := wal.Open(filepath.Join(s.dir, wal.SegmentName(seq)), s.cfg)
	if err != nil {
		return err
	}
	s.log = log
	s.seq = seq
	s.prevSnap, s.lastSnap = s.lastSnap, round
	//csmlint:allow detmap(order-independent pruning: every key below prevSnap is deleted, none is read)
	for r := range s.applied {
		if r < s.prevSnap {
			delete(s.applied, r)
		}
	}
	s.round = round
	s.share, s.digest = share, digest
	return nil
}

// appliedAt returns the durable state after executing the given round
// (i.e. the state a node positioned at round+1 holds), if retained.
func (s *nodeStore) appliedAt(round int) (appliedState, bool) {
	st, ok := s.applied[round]
	return st, ok
}

func (s *nodeStore) close() error {
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// ---- in-process cluster durable store ----

type clusterStore struct {
	sync      wal.SyncPolicy
	dir       string
	log       *wal.Log
	seq       uint64
	snapEvery int
	lastSnap  int
	appendBuf bwriter
}

// Durable returns whether the cluster persists state.
func (c *Cluster[E]) Durable() bool { return c.dur != nil }

// Close releases the cluster's durable store, syncing any buffered WAL
// appends. It is a no-op for clusters built without durability.
func (c *Cluster[E]) Close() error {
	if c.dur == nil {
		return nil
	}
	err := c.dur.log.Close()
	c.dur = nil
	return err
}

// openDurability loads (or cold-starts) the cluster's durable state:
// newest valid snapshot, then WAL batch replay through the execution
// engine, then a fresh snapshot generation so new appends never mix
// with replayed segments. Called at the end of New, after the cluster
// is fully built in its initial state.
func (c *Cluster[E]) openDurability() error {
	dcfg := c.cfg.Durability.normalized()
	if dcfg.Dir == "" {
		return errors.New("csm: durability: empty data directory")
	}
	if c.cfg.Delegated {
		return errors.New("csm: durability is incompatible with delegated mode")
	}
	if err := os.MkdirAll(dcfg.Dir, 0o755); err != nil {
		return err
	}
	seq, payload, err := wal.LoadSnapshot(dcfg.Dir)
	cold := errors.Is(err, wal.ErrNoSnapshot)
	if err != nil && !cold {
		return err
	}
	if !cold {
		if err := c.restoreSnapshot(payload); err != nil {
			return err
		}
	}
	log, recs, err := wal.Open(filepath.Join(dcfg.Dir, wal.SegmentName(seq)), dcfg.Sync)
	if err != nil {
		return err
	}
	c.dur = &clusterStore{
		sync: dcfg.Sync, dir: dcfg.Dir, log: log, seq: seq,
		snapEvery: dcfg.SnapshotEvery, lastSnap: c.round,
	}
	replayed := 0
	for _, rec := range recs {
		if rec.Type != recClusterBatch {
			continue
		}
		if err := c.replayBatch(rec.Payload); err != nil {
			return fmt.Errorf("csm: durability: WAL replay: %w", err)
		}
		replayed++
	}
	if !cold || replayed > 0 {
		// Recovery changed (or re-derived) state: cut a fresh generation
		// so the replayed segment is never appended to again.
		if err := c.snapshotDur(); err != nil {
			return err
		}
	}
	// Recovery work is setup, not steady-state measurement.
	c.counting.Reset()
	return nil
}

// snapshotPayload serializes the full cluster state: counters, per-node
// behavior + coded share, and the oracle machine states.
func (c *Cluster[E]) snapshotPayload() []byte {
	f := c.cfg.BaseField
	var w bwriter
	w.u64(uint64(c.round))
	w.u64(uint64(c.epoch))
	w.u64(uint64(c.instances))
	w.u64(uint64(c.churnAt))
	w.u32(uint32(len(c.nodes)))
	for _, n := range c.nodes {
		w.u8(byte(n.behavior))
		w.vec(vecToWire(f, n.codedState))
	}
	w.u32(uint32(len(c.oracle)))
	for _, m := range c.oracle {
		w.vec(vecToWire(f, m.State()))
	}
	return w.b
}

func (c *Cluster[E]) restoreSnapshot(payload []byte) error {
	f := c.cfg.BaseField
	r := &breader{b: payload}
	round := int(r.u64())
	epoch := int(r.u64())
	instances := int(r.u64())
	churnAt := int(r.u64())
	n := int(r.u32())
	if r.fail || n != len(c.nodes) {
		return fmt.Errorf("csm: durability: snapshot is for N=%d, cluster has N=%d", n, len(c.nodes))
	}
	behaviors := make([]Behavior, n)
	shares := make([][]E, n)
	for i := 0; i < n; i++ {
		behaviors[i] = Behavior(r.u8())
		shares[i] = vecFromWire(f, r.vec())
	}
	k := int(r.u32())
	if r.fail || k != len(c.oracle) {
		return fmt.Errorf("csm: durability: snapshot is for K=%d, cluster has K=%d", k, len(c.oracle))
	}
	states := make([][]E, k)
	for i := 0; i < k; i++ {
		states[i] = vecFromWire(f, r.vec())
	}
	if !r.done() {
		return errors.New("csm: durability: corrupt cluster snapshot payload")
	}
	for i, st := range states {
		if len(st) != c.tr.StateLen() {
			return fmt.Errorf("csm: durability: snapshot state %d has length %d, want %d", i, len(st), c.tr.StateLen())
		}
		m, err := sm.NewMachine(c.oracleTr, st)
		if err != nil {
			return err
		}
		c.oracle[i] = m
	}
	for i, nd := range c.nodes {
		c.setBehavior(i, behaviors[i])
		nd.codedState = shares[i]
		nd.received, nd.decoded = nil, nil
		nd.suspects, nd.primed, nd.primedIdx, nd.primedSusp = nil, nil, nil, nil
		down := behaviors[i] == Crashed || behaviors[i] == Recovering
		if err := c.net.SetDown(transport.NodeID(i), down); err != nil {
			return err
		}
	}
	c.round, c.epoch, c.instances, c.churnAt = round, epoch, instances, churnAt
	return nil
}

// logBatch appends a decided batch (write-ahead, after consensus and
// the churn boundary, before execution). A nil agreed batch records a
// skipped instance so replay advances the counters identically.
func (c *Cluster[E]) logBatch(steps int, agreed [][][]E) error {
	st := c.dur
	w := &st.appendBuf
	w.b = w.b[:0]
	w.u64(uint64(c.round))
	w.u32(uint32(steps))
	if agreed == nil {
		w.u8(1)
	} else {
		w.u8(0)
		w.u32(uint32(steps * c.cfg.K))
		for _, cmds := range agreed {
			for _, cmd := range cmds {
				w.vec(vecToWire(c.cfg.BaseField, cmd))
			}
		}
	}
	return st.log.Append(recClusterBatch, w.b)
}

// maybeSnapshotDur rotates the snapshot generation at batch boundaries.
func (c *Cluster[E]) maybeSnapshotDur() error {
	if c.round-c.dur.lastSnap < c.dur.snapEvery {
		return nil
	}
	return c.snapshotDur()
}

// snapshotDur writes a cluster snapshot and rolls the WAL segment to
// the new generation.
func (c *Cluster[E]) snapshotDur() error {
	st := c.dur
	seq := st.seq + 1
	if err := wal.WriteSnapshot(st.dir, seq, c.snapshotPayload()); err != nil {
		return err
	}
	if err := st.log.Close(); err != nil {
		return err
	}
	log, _, err := wal.Open(filepath.Join(st.dir, wal.SegmentName(seq)), st.sync)
	if err != nil {
		return err
	}
	st.log = log
	st.seq = seq
	st.lastSnap = c.round
	return nil
}

// replayBatch re-executes one logged batch. The record is the decided
// batch, so consensus is bypassed; the churn boundary, the skipped-
// instance bookkeeping, and the execution micro-steps run exactly as
// they did originally.
func (c *Cluster[E]) replayBatch(payload []byte) error {
	f := c.cfg.BaseField
	r := &breader{b: payload}
	round := int(r.u64())
	steps := int(r.u32())
	skipped := r.u8() == 1
	if r.fail || steps < 1 || steps > maxDurVec {
		return errors.New("corrupt batch record")
	}
	if round != c.round {
		return fmt.Errorf("batch record for round %d, cluster at round %d", round, c.round)
	}
	var agreed [][][]E
	if !skipped {
		count := int(r.u32())
		if r.fail || count != steps*c.cfg.K {
			return errors.New("corrupt batch record: command count")
		}
		agreed = make([][][]E, steps)
		for j := range agreed {
			agreed[j] = make([][]E, c.cfg.K)
			for k := 0; k < c.cfg.K; k++ {
				cmd := vecFromWire(f, r.vec())
				if len(cmd) != c.tr.CmdLen() {
					return errors.New("corrupt batch record: command length")
				}
				agreed[j][k] = cmd
			}
		}
	}
	if !r.done() {
		return errors.New("corrupt batch record: trailing bytes")
	}
	if err := c.applyChurn(c.round, steps); err != nil {
		return err
	}
	c.instances++ // normally runConsensus counts the instance
	_, err := c.executeAgreed(agreed, steps, 0, nil, true)
	return err
}
