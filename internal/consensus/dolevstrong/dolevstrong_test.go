package dolevstrong

import (
	"bytes"
	"testing"

	"codedsm/internal/consensus"
	"codedsm/internal/transport"
)

// byzEquivocator is a Byzantine sender that sends value A to the first half
// of the network and value B to the second half, each with a valid
// signature chain of length 1.
type byzEquivocator struct {
	net  *transport.Network
	ep   *transport.Endpoint
	slot uint64
	sent bool
}

func (b *byzEquivocator) Tick(inbox []transport.Message) error {
	if b.sent {
		return nil
	}
	b.sent = true
	n := b.net.N()
	for to := 0; to < n; to++ {
		if transport.NodeID(to) == b.ep.ID() {
			continue
		}
		value := []byte("AAA")
		if to >= n/2 {
			value = []byte("BBB")
		}
		sig := b.ep.SignBlob(signContext(b.slot), value)
		payload, err := consensus.AppendChainMsg(nil, consensus.ChainMsg{
			Slot: b.slot, Value: value,
			Signers: []uint64{uint64(b.ep.ID())}, Sigs: [][]byte{sig},
		})
		if err != nil {
			return err
		}
		if err := b.ep.Send(transport.NodeID(to), msgKind, payload); err != nil {
			return err
		}
	}
	return nil
}

func (b *byzEquivocator) Decided() ([]byte, bool) { return nil, true }

// silent never sends anything.
type silent struct{}

func (silent) Tick(inbox []transport.Message) error { return nil }
func (silent) Decided() ([]byte, bool)              { return nil, true }

func setup(t *testing.T, n int, seed uint64) *transport.Network {
	t.Helper()
	net, err := transport.New(transport.Config{N: n, Mode: transport.Sync, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func honest(t *testing.T, net *transport.Network, id, sender int, slot uint64, maxFaults int, value []byte) *Node {
	t.Helper()
	tr, err := consensus.NewNetTransport(net, transport.NodeID(id))
	if err != nil {
		t.Fatal(err)
	}
	nd, err := New(Config{
		Transport: tr, Sender: transport.NodeID(sender),
		Slot: slot, MaxFaults: maxFaults, Value: value, Default: []byte("DEFAULT"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

func TestHonestSenderAllAgree(t *testing.T) {
	const n, b = 7, 2
	net := setup(t, n, 1)
	nodes := make([]consensus.Node, n)
	honestIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		nodes[i] = honest(t, net, i, 0, 1, b, []byte("VALUE"))
		honestIdx = append(honestIdx, i)
	}
	if err := consensus.Run(net, nodes, honestIdx, Rounds(b)+1); err != nil {
		t.Fatal(err)
	}
	for i, nd := range nodes {
		got, ok := nd.Decided()
		if !ok || string(got) != "VALUE" {
			t.Errorf("node %d decided %q ok=%v", i, got, ok)
		}
	}
}

func TestEquivocatingSenderConsistency(t *testing.T) {
	// The Byzantine sender equivocates; all honest nodes must still decide
	// the SAME value (consistency). With signature relaying they detect the
	// equivocation and fall back to the default.
	const n, b = 7, 2
	net := setup(t, n, 2)
	nodes := make([]consensus.Node, n)
	ep, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0] = &byzEquivocator{net: net, ep: ep, slot: 1}
	waitFor := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		nodes[i] = honest(t, net, i, 0, 1, b, nil)
		waitFor = append(waitFor, i)
	}
	if err := consensus.Run(net, nodes, waitFor, Rounds(b)+1); err != nil {
		t.Fatal(err)
	}
	var first []byte
	for _, i := range waitFor {
		got, ok := nodes[i].Decided()
		if !ok {
			t.Fatalf("node %d undecided", i)
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Fatalf("nodes decided differently: %q vs %q", first, got)
		}
	}
	if string(first) != "DEFAULT" {
		t.Errorf("equivocation should yield the default, got %q", first)
	}
}

func TestSilentSenderDefaults(t *testing.T) {
	const n, b = 5, 1
	net := setup(t, n, 3)
	nodes := make([]consensus.Node, n)
	nodes[0] = silent{}
	waitFor := []int{1, 2, 3, 4}
	for _, i := range waitFor {
		nodes[i] = honest(t, net, i, 0, 2, b, nil)
	}
	if err := consensus.Run(net, nodes, waitFor, Rounds(b)+1); err != nil {
		t.Fatal(err)
	}
	for _, i := range waitFor {
		got, _ := nodes[i].Decided()
		if string(got) != "DEFAULT" {
			t.Errorf("node %d decided %q, want DEFAULT", i, got)
		}
	}
}

func TestHighFaultTolerance(t *testing.T) {
	// Dolev-Strong works for any b < N; use b = N-2 with N=5 and all but
	// one relay silent. The honest sender's chain still reaches everyone
	// directly in round 1.
	const n, b = 5, 3
	net := setup(t, n, 4)
	nodes := make([]consensus.Node, n)
	nodes[0] = honest(t, net, 0, 0, 3, b, []byte("V"))
	nodes[1] = honest(t, net, 1, 0, 3, b, nil)
	nodes[2], nodes[3], nodes[4] = silent{}, silent{}, silent{}
	if err := consensus.Run(net, nodes, []int{0, 1}, Rounds(b)+1); err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[1].Decided()
	if string(got) != "V" {
		t.Errorf("node 1 decided %q", got)
	}
}

func TestConfigValidation(t *testing.T) {
	net := setup(t, 3, 5)
	tr, err := consensus.NewNetTransport(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Transport: nil}); err == nil {
		t.Error("nil transport should fail")
	}
	if _, err := New(Config{Transport: tr, MaxFaults: 3}); err == nil {
		t.Error("MaxFaults >= N should fail")
	}
	if _, err := New(Config{Transport: tr, MaxFaults: -1}); err == nil {
		t.Error("negative MaxFaults should fail")
	}
	if _, err := New(Config{Transport: tr, Sender: 7, MaxFaults: 1}); err == nil {
		t.Error("bad sender should fail")
	}
	if _, err := consensus.NewNetTransport(net, 7); err == nil {
		t.Error("bad node ID should fail")
	}
}

func TestRunValidation(t *testing.T) {
	net := setup(t, 2, 6)
	if err := consensus.Run(net, nil, nil, 5); err == nil {
		t.Error("empty waitFor should fail")
	}
	// Undecidable: two silent nodes.
	nodes := []consensus.Node{honest(t, net, 0, 1, 9, 0, nil), silent{}}
	_ = nodes[0]
	err := consensus.Run(net, []consensus.Node{&neverDecides{}, silent{}}, []int{0}, 3)
	if err == nil {
		t.Error("expected ErrNoDecision")
	}
}

type neverDecides struct{}

func (neverDecides) Tick(inbox []transport.Message) error { return nil }
func (neverDecides) Decided() ([]byte, bool)              { return nil, false }

func TestGarbagePayloadIgnored(t *testing.T) {
	const n, b = 4, 1
	net := setup(t, n, 7)
	nodes := make([]consensus.Node, n)
	nodes[0] = honest(t, net, 0, 0, 5, b, []byte("OK"))
	for i := 1; i < n; i++ {
		nodes[i] = honest(t, net, i, 0, 5, b, nil)
	}
	// Byzantine garbage injected alongside the protocol.
	ep, err := net.Endpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Broadcast(msgKind, []byte("not gob")); err != nil {
		t.Fatal(err)
	}
	if err := consensus.Run(net, nodes, []int{0, 1, 2, 3}, Rounds(b)+1); err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[1].Decided()
	if string(got) != "OK" {
		t.Errorf("decided %q", got)
	}
}
