// Booleanlogic: Appendix A end to end. An arbitrary Boolean state machine
// (here: a 2-bit saturating counter with an overflow output) is converted
// into a polynomial over GF(2^16) via the truth-table construction, then
// executed as a CSM cluster on coded states — with a Byzantine node — and
// the decoded bits match the plain Boolean execution exactly.
//
//	go run ./examples/booleanlogic
package main

import (
	"fmt"
	"log"

	"codedsm"
)

// counterFn is the Boolean transition: state is a 2-bit counter, command a
// 1-bit "increment" signal; output is 1 when the counter saturates.
func counterFn(state, cmd uint64) (next, out uint64) {
	if cmd&1 == 1 && state < 3 {
		state++
	}
	if state == 3 {
		out = 1
	}
	return state, out
}

func main() {
	f, err := codedsm.NewGF2m(16) // 2^16 >= N+K as Appendix A requires
	if err != nil {
		log.Fatal(err)
	}

	// K=2 counters on N=8 nodes tolerating b=1 Byzantine node. The machine
	// has 3 input bits, so its polynomial degree is at most 3 and the
	// capacity bound is K <= (N - 2b - 1)/d + 1.
	const k, n, b = 2, 8, 1
	if maxK := codedsm.SyncMaxMachines(n, b, 3); maxK < k {
		log.Fatalf("capacity %d too small", maxK)
	}
	cluster, err := codedsm.Open(f,
		func(ff codedsm.Field[uint64]) (*codedsm.Transition[uint64], error) {
			return codedsm.NewBooleanMachine(ff, "sat-counter", 2, 1, 1, counterFn)
		},
		codedsm.WithNodes(n), codedsm.WithMachines(k), codedsm.WithFaults(b),
		codedsm.WithByzantineNode(5, codedsm.WrongResult),
		codedsm.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2-bit saturating counters as degree-<=3 polynomials over GF(2^16), node 5 Byzantine")
	// Counter 0 increments every round; counter 1 every other round.
	plain := []uint64{0, 0} // reference Boolean states
	for r := 0; r < 5; r++ {
		inc0, inc1 := uint64(1), uint64(r%2)
		cmds := [][]uint64{
			codedsm.PackBits(f, inc0, 1),
			codedsm.PackBits(f, inc1, 1),
		}
		res, err := cluster.ExecuteRound(cmds)
		if err != nil {
			log.Fatal(err)
		}
		var decoded [2]uint64
		for i := range decoded {
			bit, err := codedsm.UnpackBits(f, res.Outputs[i])
			if err != nil {
				log.Fatal(err)
			}
			decoded[i] = bit
		}
		plain[0], _ = counterFn(plain[0], inc0)
		plain[1], _ = counterFn(plain[1], inc1)
		fmt.Printf("round %d: correct=%v saturated=[%d %d] (plain Boolean run agrees: states %v)\n",
			r, res.Correct, decoded[0], decoded[1], plain)
	}
}
