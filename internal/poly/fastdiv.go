package poly

// Fast polynomial division via Newton iteration on the reversed divisor
// (von zur Gathen & Gerhard, ch. 9). With NTT multiplication this makes
// DivMod cost O(M(n)), which in turn makes the subproduct-tree algorithms
// genuinely O(M(n) log n) — the quasilinear coding complexity the paper's
// throughput theorem needs.

// fastDivThreshold: below this operand size the schoolbook division wins.
const fastDivThreshold = 48

// divModDispatch picks the naive or Newton division. Callers guarantee a, b
// normalized and b nonzero.
func (r *Ring[E]) divModDispatch(a, b Poly[E]) (q, rem Poly[E], err error) {
	if r.ntt == nil || len(b) < fastDivThreshold || len(a)-len(b) < fastDivThreshold {
		return r.divModNaive(a, b)
	}
	return r.fastDivMod(a, b)
}

// fastDivMod divides using q = rev(rev(a) * rev(b)^-1 mod z^(deg a - deg b + 1)).
func (r *Ring[E]) fastDivMod(a, b Poly[E]) (q, rem Poly[E], err error) {
	n, m := len(a)-1, len(b)-1
	k := n - m + 1 // quotient length
	revA := reversed(a)
	revB := reversed(b)
	invRevB, err := r.invSeries(revB, k)
	if err != nil {
		return nil, nil, err
	}
	qRev := truncated(r.Mul(revA, invRevB), k)
	// Pad qRev to exactly k coefficients before reversing.
	for len(qRev) < k {
		qRev = append(qRev, r.f.Zero())
	}
	q = r.Normalize(reversed(qRev))
	rem = r.Sub(a, r.Mul(q, b))
	return q, rem, nil
}

// invSeries returns the power-series inverse of p modulo z^k by Newton
// iteration g <- g*(2 - p*g); requires p[0] != 0.
func (r *Ring[E]) invSeries(p Poly[E], k int) (Poly[E], error) {
	c0, err := r.f.Inv(p[0])
	if err != nil {
		return nil, err
	}
	g := Poly[E]{c0}
	two := r.f.Add(r.f.One(), r.f.One())
	for prec := 1; prec < k; {
		prec = min(2*prec, k)
		pg := truncated(r.Mul(truncated(p, prec), g), prec)
		// s = 2 - p*g (valid in every characteristic: 1 - p*g*(2-p*g) =
		// (1 - p*g)^2).
		s := r.Sub(Poly[E]{two}, pg)
		g = truncated(r.Mul(g, s), prec)
	}
	return g, nil
}

// reversed returns the coefficient-reversed copy of p.
func reversed[E comparable](p Poly[E]) Poly[E] {
	out := make(Poly[E], len(p))
	for i := range p {
		out[len(p)-1-i] = p[i]
	}
	return out
}

// truncated returns p mod z^k (a copy-free slice of p when possible).
func truncated[E comparable](p Poly[E], k int) Poly[E] {
	if len(p) <= k {
		return p
	}
	return p[:k]
}
