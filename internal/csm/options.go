package csm

import (
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/transport"
	"codedsm/internal/wal"
)

// Option configures a cluster built with Open. Options validate eagerly:
// a constructor given an out-of-range value returns an option that fails
// Open with a message naming the option and the value, so misconfiguration
// surfaces at the call site rather than deep inside the engine.
//
// The Config struct remains the internal representation (and New its
// constructor) — Open is the options-based front door:
//
//	cluster, err := csm.Open(gold, bankFactory,
//		csm.WithNodes(64), csm.WithMachines(22), csm.WithFaults(21),
//		csm.WithConsensus(csm.PBFT), csm.WithPartialSync(0),
//		csm.WithBatching(8), csm.WithPipeline(2))
type Option func(*settings) error

// settings accumulates the non-generic cluster knobs an Option can set.
// The only generic configuration — the initial states — travels as an
// opaque value and is type-checked against the cluster's field element in
// Open.
type settings struct {
	n, k, maxFaults  int
	mode             transport.Mode
	gst              int
	consensus        ConsensusKind
	byzantine        map[int]Behavior
	noEquivocation   bool
	delegated        bool
	seed             uint64
	maxTicksPerRound int
	parallelism      int
	batchSize        int
	pipeline         int
	churn            []ChurnEvent
	churnFn          func(round int) []ChurnEvent
	durability       *DurabilityConfig
	initialStates    any // [][]E, asserted in Open
}

// optionErr builds an Option that fails Open with the given message.
func optionErr(format string, args ...any) Option {
	err := fmt.Errorf(format, args...)
	return func(*settings) error { return err }
}

// WithNodes sets the network size N. Required.
func WithNodes(n int) Option {
	if n < 1 {
		return optionErr("WithNodes(%d): need at least one node", n)
	}
	return func(s *settings) error { s.n = n; return nil }
}

// WithMachines sets the number of state machines K. When omitted, Open
// sizes K to the cluster's full Table 2 capacity for its N, fault budget,
// transition degree, and network mode.
func WithMachines(k int) Option {
	if k < 1 {
		return optionErr("WithMachines(%d): need at least one machine", k)
	}
	return func(s *settings) error { s.k = k; return nil }
}

// WithFaults sets the engineering fault budget b the cluster is sized for.
func WithFaults(b int) Option {
	if b < 0 {
		return optionErr("WithFaults(%d): the fault budget cannot be negative", b)
	}
	return func(s *settings) error { s.maxFaults = b; return nil }
}

// WithConsensus selects the consensus-phase protocol (Oracle, DolevStrong,
// or PBFT; the default is the trusted-sequencer Oracle the paper's
// throughput metric prescribes).
func WithConsensus(kind ConsensusKind) Option {
	switch kind {
	case Oracle, DolevStrong, PBFT:
	default:
		return optionErr("WithConsensus(%d): unknown consensus kind", int(kind))
	}
	return func(s *settings) error { s.consensus = kind; return nil }
}

// WithPartialSync switches the network to the partially synchronous timing
// model with the given global stabilization round (the default model is
// synchronous).
func WithPartialSync(gst int) Option {
	if gst < 0 {
		return optionErr("WithPartialSync(%d): negative stabilization round", gst)
	}
	return func(s *settings) error {
		s.mode = transport.PartialSync
		s.gst = gst
		return nil
	}
}

// WithByzantine assigns misbehaviours to nodes (merged over any previously
// applied WithByzantine/WithByzantineNode entries; the map is copied).
func WithByzantine(behaviors map[int]Behavior) Option {
	return func(s *settings) error {
		if s.byzantine == nil {
			s.byzantine = make(map[int]Behavior, len(behaviors))
		}
		//csmlint:allow detmap(map-to-map merge of disjoint keys is order-independent)
		for i, b := range behaviors {
			s.byzantine[i] = b
		}
		return nil
	}
}

// WithByzantineNode assigns one node's misbehaviour.
func WithByzantineNode(node int, behavior Behavior) Option {
	if node < 0 {
		return optionErr("WithByzantineNode(%d, %v): negative node index", node, behavior)
	}
	return func(s *settings) error {
		if s.byzantine == nil {
			s.byzantine = make(map[int]Behavior, 1)
		}
		s.byzantine[node] = behavior
		return nil
	}
}

// WithNoEquivocation models a broadcast network (the Section 6
// assumption): equivocating senders are coerced to a single payload.
func WithNoEquivocation() Option {
	return func(s *settings) error { s.noEquivocation = true; return nil }
}

// WithDelegated enables the Section 6.2 delegated execution phase (a
// rotating verified worker performs all coding). Delegation requires a
// synchronous broadcast network, so this option implies WithNoEquivocation.
func WithDelegated() Option {
	return func(s *settings) error {
		s.delegated = true
		s.noEquivocation = true
		return nil
	}
}

// WithSeed seeds all cluster and network randomness.
func WithSeed(seed uint64) Option {
	return func(s *settings) error { s.seed = seed; return nil }
}

// WithMaxTicksPerRound bounds a single round's lock-step network ticks
// (default 200).
func WithMaxTicksPerRound(ticks int) Option {
	if ticks < 1 {
		return optionErr("WithMaxTicksPerRound(%d): need a positive tick budget", ticks)
	}
	return func(s *settings) error { s.maxTicksPerRound = ticks; return nil }
}

// WithParallelism sets the execution-phase worker count (rounds are
// bit-identical for any value; <= 0 selects runtime.GOMAXPROCS).
func WithParallelism(workers int) Option {
	return func(s *settings) error { s.parallelism = workers; return nil }
}

// WithBatching groups the given number of consecutive workload rounds
// under one consensus instance (command batching with primed decodes; see
// Config.BatchSize).
func WithBatching(rounds int) Option {
	if rounds < 0 {
		return optionErr("WithBatching(%d): negative batch size", rounds)
	}
	return func(s *settings) error { s.batchSize = rounds; return nil }
}

// WithPipeline enables the pipelined engine at the given depth: up to that
// many decided rounds may have their client stage outstanding while the
// driver executes later rounds (see Config.Pipeline).
func WithPipeline(depth int) Option {
	if depth < 0 {
		return optionErr("WithPipeline(%d): negative pipeline depth", depth)
	}
	return func(s *settings) error { s.pipeline = depth; return nil }
}

// WithChurn appends scheduled membership and adversary changes
// (accumulates over repeated applications; see Config.Churn).
func WithChurn(events ...ChurnEvent) Option {
	return func(s *settings) error {
		s.churn = append(s.churn, events...)
		return nil
	}
}

// WithChurnFn installs a dynamic churn generator (see Config.ChurnFn and
// MovingAdversary).
func WithChurnFn(fn func(round int) []ChurnEvent) Option {
	if fn == nil {
		return optionErr("WithChurnFn(nil): need a generator (omit the option for no churn)")
	}
	return func(s *settings) error { s.churnFn = fn; return nil }
}

// DurabilityOption tunes the durable state layer enabled by
// WithDurability.
type DurabilityOption func(*DurabilityConfig)

// SnapshotEvery sets the snapshot cadence in executed rounds
// (default 32).
func SnapshotEvery(rounds int) DurabilityOption {
	return func(d *DurabilityConfig) { d.SnapshotEvery = rounds }
}

// SyncPolicy selects the WAL fsync policy (default wal.SyncAlways).
func SyncPolicy(policy wal.SyncPolicy) DurabilityOption {
	return func(d *DurabilityConfig) { d.Sync = policy }
}

// WithDurability persists the cluster's state under dir: decided
// batches are logged write-ahead and full cluster snapshots rotate on a
// cadence. Open recovers from the directory's newest valid snapshot
// plus WAL replay when it holds prior state, so an Open after a crash
// resumes at the last durable round. Incompatible with WithDelegated.
func WithDurability(dir string, opts ...DurabilityOption) Option {
	if dir == "" {
		return optionErr("WithDurability(%q): need a data directory", dir)
	}
	return func(s *settings) error {
		d := &DurabilityConfig{Dir: dir}
		for _, opt := range opts {
			if opt != nil {
				opt(d)
			}
		}
		if d.SnapshotEvery < 0 {
			return fmt.Errorf("WithDurability(%q): negative snapshot cadence %d", dir, d.SnapshotEvery)
		}
		s.durability = d
		return nil
	}
}

// WithInitialStates sets the K machines' initial state vectors (the
// default is all-zero states). The element type must match the cluster's
// field element; Open reports a mismatch by name.
func WithInitialStates[E comparable](states [][]E) Option {
	return func(s *settings) error { s.initialStates = states; return nil }
}

// Open builds and initializes a cluster from functional options — the
// serving-oriented front door to New. The field and transition factory are
// positional because every cluster needs them; everything else is an
// Option with engine defaults. When WithMachines is omitted, K defaults to
// the full Table 2 capacity of the configured N, b, transition degree, and
// network mode.
func Open[E comparable](f field.Field[E], newTransition TransitionFactory[E], opts ...Option) (*Cluster[E], error) {
	if f == nil || newTransition == nil {
		return nil, fmt.Errorf("csm: Open: the field and transition factory are required")
	}
	var s settings
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("csm: Open: nil Option")
		}
		if err := opt(&s); err != nil {
			return nil, fmt.Errorf("csm: Open: %w", err)
		}
	}
	if s.n == 0 {
		return nil, fmt.Errorf("csm: Open: WithNodes is required")
	}
	if s.k == 0 {
		// Default K to the full capacity (Table 2) — the transition is
		// built once here to learn its degree; New builds its own.
		tr, err := newTransition(f)
		if err != nil {
			return nil, fmt.Errorf("csm: Open: building transition: %w", err)
		}
		if s.mode == transport.Sync {
			s.k = lcc.SyncMaxMachines(s.n, s.maxFaults, tr.Degree())
		} else {
			s.k = lcc.PSyncMaxMachines(s.n, s.maxFaults, tr.Degree())
		}
		if s.k < 1 {
			return nil, fmt.Errorf("csm: Open: no machine capacity at N=%d b=%d d=%d (%s); lower WithFaults or raise WithNodes",
				s.n, s.maxFaults, tr.Degree(), s.mode)
		}
	}
	cfg := Config[E]{
		BaseField:        f,
		NewTransition:    newTransition,
		K:                s.k,
		N:                s.n,
		MaxFaults:        s.maxFaults,
		Mode:             s.mode,
		GST:              s.gst,
		Consensus:        s.consensus,
		Byzantine:        s.byzantine,
		NoEquivocation:   s.noEquivocation,
		Delegated:        s.delegated,
		Seed:             s.seed,
		MaxTicksPerRound: s.maxTicksPerRound,
		Parallelism:      s.parallelism,
		BatchSize:        s.batchSize,
		Pipeline:         s.pipeline,
		Churn:            s.churn,
		ChurnFn:          s.churnFn,
		Durability:       s.durability,
	}
	if s.initialStates != nil {
		states, ok := s.initialStates.([][]E)
		if !ok {
			return nil, fmt.Errorf("csm: Open: WithInitialStates element type %T does not match the cluster's field element %T",
				s.initialStates, *new(E))
		}
		cfg.InitialStates = states
	}
	return New(cfg)
}
