package csm

import (
	"slices"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// ---- Satellite bugfix coverage ----

// TestByzantineHonestEntriesNotCounted pins the fault-budget fix: map
// entries whose value is Honest restate the default and must not count
// against b.
func TestByzantineHonestEntriesNotCounted(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Byzantine = map[int]Behavior{0: Honest, 1: Honest, 2: Honest, 3: WrongResult}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatalf("round %d incorrect", r)
		}
	}
}

// TestByzantineOutOfRangeKeyRejected pins the key-range fix: nodes are
// built for 0..N-1 only, so an out-of-range key used to be silently
// ignored — a config that claims a fault the cluster never injects.
func TestByzantineOutOfRangeKeyRejected(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Byzantine = map[int]Behavior{10: Equivocate}
	if _, err := New(cfg); err == nil {
		t.Fatal("Byzantine key N must be rejected")
	}
	cfg.Byzantine = map[int]Behavior{-1: WrongResult}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative Byzantine key must be rejected")
	}
}

func TestRecoveringConfigRejected(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Byzantine = map[int]Behavior{1: Recovering}
	if _, err := New(cfg); err == nil {
		t.Fatal("Recovering is transient and must not be configurable")
	}
}

// TestRunQueueBatchedLiveness pins the RunQueue liveness fix: with
// BatchSize > 1 retries must go through ExecuteBatch (one consensus
// instance per batch), re-submitting the BadLeader-skipped suffix until
// an honest leader decides it.
func TestRunQueueBatchedLiveness(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.BatchSize = 3
	cfg.Byzantine = map[int]Behavior{0: BadLeader} // leads instance 0
	c := newCluster(t, cfg)
	rounds := RandomWorkload[uint64](gold, 6, 2, 1, 5)
	results, err := c.RunQueue(rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("executed %d of 6 rounds", len(results))
	}
	for i, res := range results {
		if res.Skipped || !res.Correct {
			t.Fatalf("round %d: skipped=%v correct=%v", i, res.Skipped, res.Correct)
		}
	}
	// The first 3-round batch was skipped once and retried whole: the
	// oracle advanced exactly 6 times, over 3 consensus instances.
	if c.oracle[0].Round() != 6 {
		t.Fatalf("oracle at round %d, want 6", c.oracle[0].Round())
	}
	if c.instances != 3 {
		t.Fatalf("%d consensus instances, want 3 (1 skipped + 2 decided)", c.instances)
	}
}

// ---- Weighted fault budget ----

// TestCrashesAreCheaperThanErrors: a cluster sized for b Byzantine faults
// tolerates up to 2b crashes — an erasure consumes one parity symbol
// where an error consumes two (Table 2).
func TestCrashesAreCheaperThanErrors(t *testing.T) {
	// b=2: 3 WrongResult (load 6) is over budget, 3 Crashed (load 3) is
	// not — and the cluster still executes correctly with them down.
	cfg := baseConfig(2, 12, 2)
	cfg.Byzantine = map[int]Behavior{1: WrongResult, 5: WrongResult, 9: WrongResult}
	if _, err := New(cfg); err == nil {
		t.Fatal("3 errors with b=2 must be rejected")
	}
	cfg.Byzantine = map[int]Behavior{1: Crashed, 5: Crashed, 9: Crashed}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 3) {
		if !res.Correct {
			t.Fatalf("round %d incorrect with 3 crashed nodes", r)
		}
	}
	if b, _ := c.Behavior(1); b != Crashed {
		t.Fatalf("node 1 behavior %v", b)
	}
}

func TestOutputDeliveryBudget(t *testing.T) {
	// N=6, b=2, K=1: 4 crashes fit the parity budget (4 <= 2b=4) but
	// leave only 2 honest repliers — fewer than the b+1=3 output delivery
	// needs — and must be rejected; 3 crashes are fine.
	cfg := baseConfig(1, 6, 2)
	cfg.Byzantine = map[int]Behavior{0: Crashed, 1: Crashed, 2: Crashed, 3: Crashed}
	if _, err := New(cfg); err == nil {
		t.Fatal("4 crashes of 6 nodes must be rejected (output delivery)")
	}
	cfg.Byzantine = map[int]Behavior{0: Crashed, 1: Crashed, 2: Crashed}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatalf("round %d incorrect", r)
		}
	}
}

func TestPartialSyncDarkBudget(t *testing.T) {
	// In partial synchrony at most b nodes may send nothing, or the N-b
	// wait threshold is unreachable.
	cfg := baseConfig(2, 16, 3)
	cfg.Mode = transport.PartialSync
	cfg.Byzantine = map[int]Behavior{0: Crashed, 1: Crashed, 2: Silent, 3: Crashed}
	if _, err := New(cfg); err == nil {
		t.Fatal("4 non-sending nodes with b=3 must be rejected in partial synchrony")
	}
	cfg.Byzantine = map[int]Behavior{0: Crashed, 1: Crashed, 2: Silent}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatalf("round %d incorrect", r)
		}
	}
}

func TestPBFTQuorumCrashBudget(t *testing.T) {
	// PBFT's 2b+1 prepare/commit quorum needs N - crashed >= 2b+1 live
	// voters even in a synchronous network: N=10, b=3 admits 3 crashes
	// (quorum 7 of 7 alive) but not 4 — which the parity budget alone
	// (load 4 <= 2b=6) would have allowed.
	cfg := baseConfig(2, 10, 3)
	cfg.Consensus = PBFT
	cfg.Byzantine = map[int]Behavior{1: Crashed, 4: Crashed, 7: Crashed, 8: Crashed}
	if _, err := New(cfg); err == nil {
		t.Fatal("4 crashes of 10 with b=3 must be rejected under PBFT (quorum)")
	}
	cfg.Byzantine = map[int]Behavior{1: Crashed, 4: Crashed, 7: Crashed}
	c := newCluster(t, cfg)
	if err := c.Crash(8); err == nil {
		t.Fatal("a fourth crash must be rejected under PBFT (quorum)")
	}
	for r, res := range runRounds(t, c, 2) {
		if !res.Correct || res.Skipped {
			t.Fatalf("round %d: correct=%v skipped=%v", r, res.Correct, res.Skipped)
		}
	}
}

// ---- Crash / rejoin ----

// TestCrashRejoinRepair is the acceptance scenario: a cluster that
// crashes, repairs, and rejoins a node mid-run still produces
// oracle-correct outputs, and the repaired share is bit-identical to a
// fresh encode of the current machine states.
func TestCrashRejoinRepair(t *testing.T) {
	cfg := baseConfig(3, 12, 2)
	cfg.Byzantine = map[int]Behavior{5: WrongResult}
	cfg.InitialStates = [][]uint64{{10}, {20}, {30}}
	c := newCluster(t, cfg)
	runRounds(t, c, 2)
	if err := c.Crash(7); err != nil {
		t.Fatal(err)
	}
	if !c.net.Down(7) {
		t.Fatal("crashed node still reachable")
	}
	for r, res := range runRounds(t, c, 3) {
		if !res.Correct {
			t.Fatalf("round %d incorrect with node 7 down", r)
		}
	}
	if err := c.Rejoin(7); err != nil {
		t.Fatal(err)
	}
	if b, _ := c.Behavior(7); b != Honest {
		t.Fatalf("rejoined node behavior %v", b)
	}
	// The repaired share equals a fresh encode of the oracle states — the
	// node was re-provisioned without downloading all K states.
	enc, err := c.code.EncodeVectors(c.OracleStates())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.NodeCodedState(7)
	if !field.VecEqual[uint64](gold, got, enc[7]) {
		t.Fatalf("repaired share %v, fresh encode %v", got, enc[7])
	}
	stats := c.RepairStats()
	if stats.Repairs != 1 || stats.Failed != 0 {
		t.Fatalf("repair stats %+v", stats)
	}
	if stats.Ops.Total() == 0 {
		t.Fatal("repair cost not accounted")
	}
	// The repaired node participates correctly in subsequent rounds.
	for r, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatalf("round %d incorrect after rejoin", r)
		}
	}
}

func TestCrashedLeaderSkipsInstance(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	c := newCluster(t, cfg)
	if err := c.Crash(0); err != nil { // node 0 leads instance 0
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 2, 2, 1, 3)
	res0, err := c.ExecuteRound(wl[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res0.Skipped {
		t.Fatal("a crashed leader's instance must be skipped")
	}
	res1, err := c.ExecuteRound(wl[1])
	if err != nil {
		t.Fatal(err)
	}
	if res1.Skipped || !res1.Correct {
		t.Fatalf("honest leader round: %+v", res1)
	}
}

func TestMembershipValidation(t *testing.T) {
	c := newCluster(t, baseConfig(2, 10, 2))
	if err := c.Crash(-1); err == nil {
		t.Error("out-of-range crash should fail")
	}
	if err := c.Rejoin(3); err == nil {
		t.Error("rejoining a live node should fail")
	}
	if err := c.Corrupt(3, Crashed); err == nil {
		t.Error("Corrupt(Crashed) should point at Crash")
	}
	if err := c.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(3); err == nil {
		t.Error("double crash should fail")
	}
	if err := c.Corrupt(3, WrongResult); err == nil {
		t.Error("corrupting a crashed node should fail")
	}
	if err := c.Rejoin(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Rejoin(3); err == nil {
		t.Error("rejoining an honest node should fail")
	}
}

// ---- Churn schedule ----

func TestChurnValidation(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Churn = []ChurnEvent{{Round: 0, Node: 10, Op: ChurnCrash}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range churn node should fail")
	}
	cfg.Churn = []ChurnEvent{{Round: -1, Node: 1, Op: ChurnCrash}}
	if _, err := New(cfg); err == nil {
		t.Error("negative churn round should fail")
	}
	cfg.Churn = []ChurnEvent{{Round: 0, Node: 1, Op: ChurnCorrupt, Behavior: Honest}}
	if _, err := New(cfg); err == nil {
		t.Error("corrupt-to-Honest should point at ChurnRelease")
	}
	cfg.Churn = []ChurnEvent{{Round: 0, Node: 1, Op: ChurnCorrupt, Behavior: Crashed}}
	if _, err := New(cfg); err == nil {
		t.Error("corrupt-to-Crashed should point at ChurnCrash")
	}
	cfg.Churn = []ChurnEvent{{Round: 0, Node: 1, Op: ChurnOp(9)}}
	if _, err := New(cfg); err == nil {
		t.Error("unknown churn op should fail")
	}
	cfg = baseConfig(2, 10, 2)
	cfg.Mode = transport.Sync
	cfg.NoEquivocation = true
	cfg.Delegated = true
	cfg.Churn = []ChurnEvent{{Round: 0, Node: 1, Op: ChurnCrash}}
	if _, err := New(cfg); err == nil {
		t.Error("churn + delegated should fail")
	}
	if ChurnCrash.String() != "crash" || ChurnRejoin.String() != "rejoin" ||
		ChurnCorrupt.String() != "corrupt" || ChurnRelease.String() != "release" ||
		ChurnOp(9).String() == "" {
		t.Error("churn op strings")
	}
	if Crashed.String() != "crashed" || Recovering.String() != "recovering" {
		t.Error("behavior strings")
	}
}

// churnSchedule is the scenario the determinism tests share: a crash, a
// moving corruption, a second crash, and both repairs, all mid-run.
func churnSchedule() []ChurnEvent {
	return []ChurnEvent{
		{Round: 1, Node: 2, Op: ChurnCrash},
		{Round: 2, Node: 5, Op: ChurnCorrupt, Behavior: WrongResult},
		{Round: 3, Node: 9, Op: ChurnCrash},
		{Round: 4, Node: 2, Op: ChurnRejoin},
		{Round: 5, Node: 5, Op: ChurnRelease},
		{Round: 5, Node: 11, Op: ChurnCorrupt, Behavior: Equivocate},
		{Round: 6, Node: 9, Op: ChurnRejoin},
	}
}

func churnBaseConfig() Config[uint64] {
	cfg := baseConfig(2, 14, 3)
	cfg.Churn = churnSchedule()
	return cfg
}

// TestChurnRunCorrect: the scheduled churn scenario stays oracle-correct
// in every round and advances the epoch per boundary that applied events.
func TestChurnRunCorrect(t *testing.T) {
	c := newCluster(t, churnBaseConfig())
	for r, res := range runRounds(t, c, 8) {
		if !res.Correct {
			t.Fatalf("round %d incorrect under churn", r)
		}
	}
	if c.Epoch() != 6 {
		t.Fatalf("epoch %d, want 6 (six boundaries applied events)", c.Epoch())
	}
	stats := c.RepairStats()
	if stats.Repairs != 2 {
		t.Fatalf("repairs %d, want 2", stats.Repairs)
	}
	for _, i := range []int{2, 5, 9} {
		if b, _ := c.Behavior(i); b != Honest {
			t.Fatalf("node %d ended %v, want honest", i, b)
		}
	}
}

// requireSameResults asserts two runs are bit-identical, RoundResult for
// RoundResult.
func requireSameResults(t *testing.T, label string, a, b []*RoundResult[uint64]) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rounds", label, len(a), len(b))
	}
	for r := range a {
		if a[r].Correct != b[r].Correct || a[r].Skipped != b[r].Skipped || a[r].Ticks != b[r].Ticks {
			t.Fatalf("%s: round %d header differs: %+v vs %+v", label, r, a[r], b[r])
		}
		if !slices.Equal(a[r].FaultyDetected, b[r].FaultyDetected) {
			t.Fatalf("%s: round %d faulty %v vs %v", label, r, a[r].FaultyDetected, b[r].FaultyDetected)
		}
		for k := range a[r].Outputs {
			if !slices.Equal(a[r].Outputs[k], b[r].Outputs[k]) {
				t.Fatalf("%s: round %d machine %d output %v vs %v", label, r, k, a[r].Outputs[k], b[r].Outputs[k])
			}
		}
	}
}

// TestChurnDeterministicAcrossEngines is the acceptance determinism
// contract: same seed + churn schedule ⇒ bit-identical outputs, ticks and
// op counts, sequential vs parallel vs pipelined, unbatched and batched.
func TestChurnDeterministicAcrossEngines(t *testing.T) {
	for _, batch := range []int{1, 2} {
		run := func(parallelism, pipeline int) (*Cluster[uint64], []*RoundResult[uint64]) {
			cfg := churnBaseConfig()
			cfg.BatchSize = batch
			cfg.Parallelism = parallelism
			cfg.Pipeline = pipeline
			c := newCluster(t, cfg)
			wl := RandomWorkload[uint64](gold, 8, c.cfg.K, c.tr.CmdLen(), 7)
			res, err := c.Run(wl)
			if err != nil {
				t.Fatal(err)
			}
			return c, res
		}
		seqC, seq := run(1, 0)
		parC, par := run(4, 0)
		pipC, pip := run(4, 3)
		requireSameResults(t, "parallel-vs-sequential", seq, par)
		requireSameResults(t, "pipelined-vs-sequential", seq, pip)
		for _, c := range []*Cluster[uint64]{parC, pipC} {
			if c.OpCounts() != seqC.OpCounts() {
				t.Fatalf("B=%d: op counts differ: %+v vs %+v", batch, c.OpCounts(), seqC.OpCounts())
			}
			if c.Epoch() != seqC.Epoch() {
				t.Fatalf("B=%d: epoch %d vs %d", batch, c.Epoch(), seqC.Epoch())
			}
			if c.RepairStats() != seqC.RepairStats() {
				t.Fatalf("B=%d: repair stats differ", batch)
			}
			for i := range seqC.nodes {
				a, _ := seqC.NodeCodedState(i)
				b, _ := c.NodeCodedState(i)
				if !slices.Equal(a, b) {
					t.Fatalf("B=%d: node %d coded state diverged", batch, i)
				}
			}
		}
	}
}

// TestMovingAdversary is the Section 7 dynamic adversary as a ChurnFn:
// the Byzantine set re-targets every epoch, within the per-epoch budget,
// and CSM stays correct — there is no small committee whose capture
// matters.
func TestMovingAdversary(t *testing.T) {
	const k, n, b = 3, 15, 3
	cfg := baseConfig(k, n, b)
	fn, err := MovingAdversary(n, b, 2, WrongResult, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ChurnFn = fn
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 8) {
		if !res.Correct {
			t.Fatalf("round %d: dynamic adversary broke CSM", r)
		}
	}
	if c.Epoch() != 4 {
		t.Fatalf("epoch %d, want 4 (adversary moved every 2 rounds)", c.Epoch())
	}
	corrupted := 0
	for i := 0; i < n; i++ {
		if beh, _ := c.Behavior(i); beh != Honest {
			corrupted++
		}
	}
	if corrupted != b {
		t.Fatalf("%d corrupted nodes at end, want exactly b=%d", corrupted, b)
	}
	// Degenerate parameters surface as errors, not hangs or no-ops.
	if _, err := MovingAdversary(4, 5, 2, WrongResult, 1); err == nil {
		t.Error("b > n must be rejected")
	}
	if _, err := MovingAdversary(0, 0, 2, WrongResult, 1); err == nil {
		t.Error("n = 0 must be rejected")
	}
	if _, err := MovingAdversary(8, 2, 0, WrongResult, 1); err == nil {
		t.Error("epochLen < 1 must be rejected")
	}
	if _, err := MovingAdversary(8, 2, 2, Honest, 1); err == nil {
		t.Error("Honest is not a corruption")
	}
	if _, err := MovingAdversary(8, 2, 2, Crashed, 1); err == nil {
		t.Error("Crashed is not a corruption")
	}
}
