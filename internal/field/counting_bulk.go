package field

// Bulk kernels for the counting decorator: charge the counters in one
// atomic add per vector — the totals are exactly what the replaced scalar
// loops would have accumulated element by element, and atomic counters
// commute, so totals are independent of worker scheduling — then delegate
// to the wrapped field's kernel (native when it has one, the generic
// adapter otherwise). Measured clusters therefore keep devirtualized
// arithmetic while the paper's operation-count metric stays intact.

var _ Bulk[uint64] = (*Counting[uint64])(nil)

// AddVec implements Bulk, counting len(a) additions.
func (c *Counting[E]) AddVec(dst, a, b []E) {
	c.adds.Add(uint64(len(a)))
	c.innerBulk.AddVec(dst, a, b)
}

// SubVec implements Bulk, counting len(a) additions.
func (c *Counting[E]) SubVec(dst, a, b []E) {
	c.adds.Add(uint64(len(a)))
	c.innerBulk.SubVec(dst, a, b)
}

// MulVec implements Bulk, counting len(a) multiplications.
func (c *Counting[E]) MulVec(dst, a, b []E) {
	c.muls.Add(uint64(len(a)))
	c.innerBulk.MulVec(dst, a, b)
}

// ScaleVec implements Bulk, counting len(a) multiplications.
func (c *Counting[E]) ScaleVec(dst []E, k E, a []E) {
	c.muls.Add(uint64(len(a)))
	c.innerBulk.ScaleVec(dst, k, a)
}

// ScaleAccVec implements Bulk, counting len(a) additions and
// multiplications.
func (c *Counting[E]) ScaleAccVec(dst []E, k E, a []E) {
	c.adds.Add(uint64(len(a)))
	c.muls.Add(uint64(len(a)))
	c.innerBulk.ScaleAccVec(dst, k, a)
}

// SubScaleVec implements Bulk, counting len(a) additions and
// multiplications.
func (c *Counting[E]) SubScaleVec(dst []E, k E, a []E) {
	c.adds.Add(uint64(len(a)))
	c.muls.Add(uint64(len(a)))
	c.innerBulk.SubScaleVec(dst, k, a)
}

// DotVec implements Bulk, counting len(a) additions and multiplications.
func (c *Counting[E]) DotVec(a, b []E) E {
	c.adds.Add(uint64(len(a)))
	c.muls.Add(uint64(len(a)))
	return c.innerBulk.DotVec(a, b)
}

// SubScalarVec implements Bulk, counting len(a) additions.
func (c *Counting[E]) SubScalarVec(dst, a []E, k E) {
	c.adds.Add(uint64(len(a)))
	c.innerBulk.SubScalarVec(dst, a, k)
}

// ScalarSubVec implements Bulk, counting len(a) additions.
func (c *Counting[E]) ScalarSubVec(dst []E, k E, a []E) {
	c.adds.Add(uint64(len(a)))
	c.innerBulk.ScalarSubVec(dst, k, a)
}

// HornerVec implements Bulk, counting len(acc) additions and
// multiplications.
func (c *Counting[E]) HornerVec(acc, xs []E, k E) {
	c.adds.Add(uint64(len(acc)))
	c.muls.Add(uint64(len(acc)))
	c.innerBulk.HornerVec(acc, xs, k)
}

// BatchInvInto implements Bulk. The success path charges Montgomery's-trick
// cost — 3n multiplications and one inversion — and the error path charges
// the i prefix multiplications performed before the zero at index i, exactly
// matching the scalar BatchInv sequence.
func (c *Counting[E]) BatchInvInto(dst, xs []E) error {
	if i := zeroIndex[E](c.inner, xs); i >= 0 {
		c.muls.Add(uint64(i))
		return c.innerBulk.BatchInvInto(dst, xs[:i+1])
	}
	c.muls.Add(3 * uint64(len(xs)))
	if len(xs) > 0 {
		c.invs.Add(1)
	}
	return c.innerBulk.BatchInvInto(dst, xs)
}
