// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON baseline (name, ns/op, B/op, allocs/op), the format
// committed as BENCH_PR*.json to track the performance trajectory across
// PRs. An optional -baseline flag embeds a previous run as the "baseline"
// section, so a single artifact carries before/after; it accepts either a
// raw `go test -bench` text file or a previously committed benchjson
// artifact (whose "current" section becomes the baseline).
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson [-baseline BENCH_PR2.json] > BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// File is the committed artifact layout.
type File struct {
	Note      string   `json:"note,omitempty"`
	Baseline  []Result `json:"baseline,omitempty"`
	Current   []Result `json:"current"`
	Generator string   `json:"generator"`
}

func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iters: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "B/op":
				res.BytesOp = v
			case "allocs/op":
				res.AllocsOp = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// loadBaseline reads a previous run from either a committed benchjson
// artifact (its "current" section) or a raw `go test -bench` text file.
// An input yielding no benchmark results is an error, not a silently
// empty baseline section.
func loadBaseline(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev File
	if json.Unmarshal(data, &prev) == nil && len(prev.Current) > 0 {
		return prev.Current, nil
	}
	results, err := parse(strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("baseline %s contains no benchmark results", path)
	}
	return results, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "previous `go test -bench` text output to embed as the baseline section")
	note := flag.String("note", "", "free-form provenance note")
	flag.Parse()

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out := File{Note: *note, Current: current, Generator: "make bench-json (cmd/benchjson)"}
	if *baselinePath != "" {
		baseline, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		out.Baseline = baseline
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
