package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WALFsync enforces the PR 7 durability contract inside internal/wal:
//
//  1. fsync-before-rename — os.Rename may only publish a file that was
//     Sync'ed first (the snapshot .tmp protocol), otherwise a crash can
//     leave a renamed-but-empty file, which is worse than no file;
//  2. write-then-sync — a function that writes to an *os.File must
//     reach a Sync (or a SyncPolicy-honoring helper like maybeSync)
//     after its last write, and must not return success between a
//     write and that sync.
//
// The check computes a package-local fact set first: any function
// whose body (transitively) contains an (*os.File).Sync-shaped call —
// maybeSync, syncDir, Log.Sync — counts as honoring the policy, so
// refactoring the sync into a helper does not trip the analyzer.
// Error-path returns (inside an `err != nil` guard) are not success
// returns and are exempt. The analysis is lexical, not path-sensitive:
// a Sync anywhere before the rename / after the last write satisfies
// it, and deliberate exceptions carry //csmlint:allow walfsync(reason).
var WALFsync = &Analyzer{
	Name: "walfsync",
	Doc: "in internal/wal, flag os.Rename without a preceding Sync and file-writing " +
		"functions that return before honoring the SyncPolicy",
	Run: runWALFsync,
}

func runWALFsync(pass *Pass) error {
	if !pathMatches(pass.Path, "internal/wal") {
		return nil
	}
	syncFuncs := collectSyncingFuncs(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncDurability(pass, fd, syncFuncs)
		}
	}
	return nil
}

// collectSyncingFuncs returns the package functions that (transitively)
// contain a .Sync() call — the helpers through which the SyncPolicy is
// honored.
func collectSyncingFuncs(pass *Pass) map[*types.Func]bool {
	type fn struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var fns []fn
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn{obj, fd.Body})
		}
	}
	syncing := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if syncing[f.obj] {
				continue
			}
			found := false
			ast.Inspect(f.body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isDirectSyncCall(call) || syncing[callee(pass, call)] {
					found = true
					return false
				}
				return true
			})
			if found {
				syncing[f.obj] = true
				changed = true
			}
		}
	}
	return syncing
}

// isDirectSyncCall matches x.Sync() — the *os.File method and anything
// shaped like it (Log.Sync, a directory handle's Sync).
func isDirectSyncCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Sync" && len(call.Args) == 0
}

// callee resolves the *types.Func a call invokes, or nil.
func callee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, _ := pass.Info.Uses[id].(*types.Func)
	return obj
}

// checkFuncDurability applies both WAL rules to one function.
func checkFuncDurability(pass *Pass, fd *ast.FuncDecl, syncFuncs map[*types.Func]bool) {
	var syncPositions, renames []token.Pos
	var writes []token.Pos
	var renameCalls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			// Closures are separate durability scopes; a Sync inside a
			// deferred closure does not order against this body.
			_ = fl
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isDirectSyncCall(call) || syncFuncs[callee(pass, call)]:
			syncPositions = append(syncPositions, call.Pos())
		case isOSRenameCall(pass, call):
			renames = append(renames, call.Pos())
			renameCalls = append(renameCalls, call)
		case isFileWriteCall(pass, call):
			writes = append(writes, call.Pos())
		}
		return true
	})

	hasSyncBefore := func(pos token.Pos) bool {
		for _, s := range syncPositions {
			if s < pos {
				return true
			}
		}
		return false
	}
	hasSyncAfter := func(pos token.Pos) bool {
		for _, s := range syncPositions {
			if s > pos {
				return true
			}
		}
		return false
	}

	// Rule 1: fsync-before-rename.
	for i, pos := range renames {
		if !hasSyncBefore(pos) {
			pass.Reportf(pos,
				"os.Rename(%s, %s) publishes a file with no preceding Sync; fsync the temp file (and its directory) before renaming it into place",
				types.ExprString(renameCalls[i].Args[0]), types.ExprString(renameCalls[i].Args[1]))
		}
	}

	// Rule 2: write-then-sync.
	if len(writes) == 0 {
		return
	}
	firstWrite, lastWrite := writes[0], writes[0]
	for _, w := range writes[1:] {
		if w < firstWrite {
			firstWrite = w
		}
		if w > lastWrite {
			lastWrite = w
		}
	}
	if !hasSyncAfter(lastWrite) {
		pass.Reportf(lastWrite,
			"%s writes to an *os.File with no Sync (or SyncPolicy helper) after the last write; appends must reach stable storage before success is reported",
			fd.Name.Name)
		return
	}
	// First sync position after the first write bounds the window in
	// which a success return would skip durability.
	var syncAfterFirst token.Pos
	for _, s := range syncPositions {
		if s > firstWrite && (syncAfterFirst == token.NoPos || s < syncAfterFirst) {
			syncAfterFirst = s
		}
	}
	reportEarlyReturns(pass, fd, firstWrite, syncAfterFirst, syncFuncs)
}

// reportEarlyReturns flags success returns between a file write and
// the sync that makes it durable. Returns inside an `err != nil` guard
// are failure paths, and `return l.maybeSync()` — a return whose own
// results perform the sync — is the honoring pattern; both are exempt.
func reportEarlyReturns(pass *Pass, fd *ast.FuncDecl, writePos, syncPos token.Pos, syncFuncs map[*types.Func]bool) {
	returnSyncs := func(n *ast.ReturnStmt) bool {
		found := false
		for _, res := range n.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && (isDirectSyncCall(call) || syncFuncs[callee(pass, call)]) {
					found = true
					return false
				}
				return true
			})
		}
		return found
	}
	var walk func(n ast.Node, inErrGuard bool)
	walk = func(n ast.Node, inErrGuard bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			if n.Pos() > writePos && (syncPos == token.NoPos || n.Pos() < syncPos) && !inErrGuard && !returnSyncs(n) {
				pass.Reportf(n.Pos(),
					"%s returns after a file write but before the SyncPolicy is honored; sync (or maybeSync) before reporting success",
					fd.Name.Name)
			}
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init, inErrGuard)
			}
			guard := inErrGuard || isErrNotNil(pass, n.Cond)
			walk(n.Body, guard)
			walk(n.Else, guard)
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				walk(s, inErrGuard)
			}
			return
		}
		// Generic descent for loops, switches, etc.
		switch s := n.(type) {
		case *ast.ForStmt:
			walk(s.Body, inErrGuard)
		case *ast.RangeStmt:
			walk(s.Body, inErrGuard)
		case *ast.SwitchStmt:
			walk(s.Body, inErrGuard)
		case *ast.TypeSwitchStmt:
			walk(s.Body, inErrGuard)
		case *ast.SelectStmt:
			walk(s.Body, inErrGuard)
		case *ast.CaseClause:
			for _, st := range s.Body {
				walk(st, inErrGuard)
			}
		case *ast.CommClause:
			for _, st := range s.Body {
				walk(st, inErrGuard)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, inErrGuard)
		}
	}
	walk(fd.Body, false)
}

// isErrNotNil matches conditions guarding failure paths: any
// comparison of an error-typed expression against nil.
func isErrNotNil(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if tv, ok := pass.Info.Types[side]; ok && tv.Type != nil && implementsError(tv.Type) {
				found = true
			}
		}
		return true
	})
	return found
}

// isOSRenameCall matches os.Rename(old, new).
func isOSRenameCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rename" || len(call.Args) != 2 {
		return false
	}
	pkg := importedPackage(pass, sel)
	return pkg != nil && pkg.Path() == "os"
}

// fileWriteMethods are the *os.File methods that put bytes on disk.
var fileWriteMethods = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"Truncate":    true,
}

// isFileWriteCall matches f.Write/WriteAt/WriteString/Truncate where f
// is an *os.File (possibly via a struct field).
func isFileWriteCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !fileWriteMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
