# Single source of truth for the commands CI and humans run.
GO ?= go

# Benchmarks recorded by bench-json: the cluster rounds the acceptance
# criteria track (parallel + pipelined/batched engines), the Submit-based
# ingress throughput, and the kernel-level micro-benchmarks.
BENCH_JSON_PATTERN = BenchmarkClusterRoundParallel|BenchmarkClusterRoundPipelined|BenchmarkClientThroughput|BenchmarkLCCEncode|BenchmarkLCCDecode|BenchmarkFieldKernels
# BASELINE: previous run to embed as the before section — either a raw
# `go test -bench` text file or a committed benchjson artifact.
BASELINE ?=
# BENCH_OUT: artifact the bench-json target writes.
BENCH_OUT ?= BENCH_PR5.json

# Pinned external tool versions, extracted from tools.go (the single
# source of truth) and run via `go run module@version` so the module's
# own dependency graph stays empty.
STATICCHECK_MODULE  := $(shell sed -n 's/.*StaticcheckModule  = "\(.*\)".*/\1/p' tools.go)
STATICCHECK_VERSION := $(shell sed -n 's/.*StaticcheckVersion = "\(.*\)".*/\1/p' tools.go)
GOVULNCHECK_MODULE  := $(shell sed -n 's/.*GovulncheckModule  = "\(.*\)".*/\1/p' tools.go)
GOVULNCHECK_VERSION := $(shell sed -n 's/.*GovulncheckVersion = "\(.*\)".*/\1/p' tools.go)

.PHONY: all build test race bench bench-json bench-micro bench-pr3 bench-pr5 bench-pr10 smoke-pipeline smoke-churn smoke-service smoke-shard smoke-processes smoke-restart soak soak-short fuzz-smoke csmlint staticcheck govulncheck lint fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, no test re-run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Kernel micro-benchmark smoke run (encode/decode and field kernels).
bench-micro:
	$(GO) test -bench='BenchmarkLCCEncode|BenchmarkLCCDecode' -benchtime=1x -run='^$$' ./internal/lcc/
	$(GO) test -bench='BenchmarkFieldKernels' -benchtime=1x -run='^$$' ./internal/field/

# Machine-readable benchmark baseline: runs the tracked benchmarks and
# writes $(BENCH_OUT) (name, ns/op, B/op, allocs/op). Set BASELINE to a
# previous raw `go test -bench` text file or benchjson artifact to embed a
# before/after section.
bench-json:
	$(GO) test -bench='$(BENCH_JSON_PATTERN)' -benchmem -benchtime=3x -run='^$$' . ./internal/lcc/ ./internal/field/ > bench-current.txt
	$(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) -note "cluster rounds (parallel + pipeline x batch sweep) + submit-ingress client throughput + coding kernels, benchtime=3x" < bench-current.txt > $(BENCH_OUT)
	@rm -f bench-current.txt
	@echo wrote $(BENCH_OUT)

# Regenerate BENCH_PR3.json: the pipeline x batch sweep measured against
# the committed BENCH_PR2.json baseline.
bench-pr3:
	$(MAKE) bench-json BENCH_OUT=BENCH_PR3.json BASELINE=BENCH_PR2.json

# Regenerate BENCH_PR5.json: the tracked cluster benchmarks plus the
# Submit-ingress throughput sweep, against the committed BENCH_PR3.json.
bench-pr5:
	$(MAKE) bench-json BENCH_OUT=BENCH_PR5.json BASELINE=BENCH_PR3.json

# Regenerate BENCH_PR10.json: the sharded-router Submit throughput sweep
# (S x submitters, identical N=12 shards, M=6S global machines). On a
# single-core host the scaling shows as flat ns_op while the served
# machine count grows S-fold.
bench-pr10:
	$(GO) test -bench='BenchmarkShardedThroughput' -benchmem -benchtime=200x -run='^$$' ./internal/shard/ > bench-current.txt
	$(GO) run ./cmd/benchjson -note "sharded router Submit throughput, S={1,2,4} x submitters={1,4,8}, N=12 per shard, M=6S machines, benchtime=200x; aggregate scaling = S-fold machines at flat per-command ns_op" < bench-current.txt > BENCH_PR10.json
	@rm -f bench-current.txt

# One pipelined + batched end-to-end configuration (CI smoke): Byzantine
# nodes, Dolev-Strong consensus, pipeline depth 4, 4-round batches.
smoke-pipeline:
	$(GO) run ./cmd/csmsim -n 16 -b 3 -byz 1,5,9 -rounds 8 -consensus dolev-strong -pipeline 4 -batch 4

# Churn end-to-end configuration under the race detector (CI smoke): a
# node crashes and rejoins via coded-state repair while the adversary
# moves, on the parallel engine.
smoke-churn:
	$(GO) run -race ./cmd/csmsim -n 16 -b 3 -rounds 8 -consensus dolev-strong \
		-churn "1:crash:2,3:rejoin:2,4:corrupt:5:wrong,6:release:5"

# The Submit-based ingress end to end under the race detector (CI smoke):
# concurrent tellers, futures, backpressure, consensus batching.
smoke-service:
	$(GO) run -race ./examples/service

# The sharded multi-cluster router end to end under the race detector
# (CI smoke): per-tenant shards behind the consistent-hash ingress,
# skewed traffic, one cross-shard two-phase transfer, one forced
# rebalance, and final per-machine digests checked bit-identical against
# an unsharded single-cluster oracle run.
smoke-shard:
	$(GO) run -race ./examples/multitenant

# The multi-process deployment end to end (CI smoke), once per consensus
# mode: bootstrap a 4-node localhost cluster of csmnode OS processes over
# the TCP transport, drive a workload (socket ingress under the oracle
# sequencer, symmetric seeded rounds under the BFT protocols), and
# require outputs and run digests bit-identical to the in-memory
# simulated oracle. The last run crashes the PBFT view-0 leader mid-run
# and requires the survivors to finish via view change.
smoke-processes:
	$(GO) build -o bin/csmnode ./cmd/csmnode
	$(GO) run ./examples/processes -csmnode bin/csmnode -n 4 -k 2 -rounds 8 -timeout 2m
	$(GO) run ./examples/processes -csmnode bin/csmnode -n 4 -k 2 -degree 1 -faults 1 -consensus dolev-strong -rounds 8 -timeout 2m
	$(GO) run ./examples/processes -csmnode bin/csmnode -n 4 -k 2 -degree 1 -faults 1 -consensus pbft -rounds 8 -timeout 2m
	$(GO) run ./examples/processes -csmnode bin/csmnode -n 4 -k 2 -degree 1 -faults 1 -consensus pbft -rounds 8 -kill-leader -timeout 3m

# Durable crash-restart end to end (CI smoke): a race-instrumented
# 4-node durable csmnode cluster is whole-cluster SIGKILLed mid-workload
# (plus one injected mid-record crash), restarted from its WALs and coded
# snapshots each time, and must finish bit-identical to the in-memory
# oracle.
smoke-restart:
	$(GO) build -race -o bin/csmnode ./cmd/csmnode
	$(GO) run ./examples/restart -csmnode bin/csmnode -timeout 4m

# Duration-bounded churn + crash soak: in-process MovingAdversary and
# crash/repair churn interleaved with random whole-cluster SIGKILL and
# restart of real csmnode processes. `soak` runs for minutes; CI runs the
# seconds-sized `soak-short`.
soak:
	$(GO) build -race -o bin/csmnode ./cmd/csmnode
	$(GO) run -race ./examples/soak -csmnode bin/csmnode -duration 3m

soak-short:
	$(GO) build -race -o bin/csmnode ./cmd/csmnode
	$(GO) run -race ./examples/soak -csmnode bin/csmnode -duration 15s

# Short fuzz runs over the TCP framing and message codec, the WAL record
# reader, and the consensus wire codecs (CI smoke): the checked-in corpus
# plus a few seconds of new coverage-guided inputs.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalMessage -fuzztime=10s ./internal/transport/
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=10s ./internal/transport/
	$(GO) test -run='^$$' -fuzz=FuzzWALReader -fuzztime=10s ./internal/wal/
	$(GO) test -run='^$$' -fuzz=FuzzConsensusMessage -fuzztime=10s ./internal/consensus/

# csmlint: the repo's own analyzer suite (determinism, wire-codec, and
# crash-safety invariants; see internal/lint/README.md), run through the
# cmd/go vet driver so findings carry standard vet formatting and caching.
csmlint:
	$(GO) build -o bin/csmlint ./cmd/csmlint
	$(GO) vet -vettool=$(abspath bin/csmlint) ./...

# staticcheck at the version pinned in tools.go. `go run` resolves the
# pinned module directly — no install step, no silently-skipped check;
# without network access this fails loudly instead.
staticcheck:
	$(GO) run $(STATICCHECK_MODULE)@$(STATICCHECK_VERSION) ./...

# Known-vulnerability scan over the module and its (standard-library)
# dependency surface, pinned in tools.go.
govulncheck:
	$(GO) run $(GOVULNCHECK_MODULE)@$(GOVULNCHECK_VERSION) ./...

# The full static-analysis gate CI runs: csmlint first (offline, catches
# seeded protocol-invariant violations before anything needs a network),
# then staticcheck and govulncheck at their pinned versions.
lint: csmlint staticcheck govulncheck

fmt:
	gofmt -w .

# Fails (and lists the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet lint build race bench bench-micro smoke-pipeline smoke-churn smoke-service smoke-shard smoke-processes smoke-restart soak-short fuzz-smoke
