// Command csmbench regenerates the paper's tables and figures as measured
// experiments:
//
//	csmbench -table1          Table 1 (security / storage / throughput per scheme)
//	csmbench -table2          Table 2 (fault-tolerance thresholds, formula vs empirical)
//	csmbench -scaling         Theorem 1 series (γ, β, coding cost vs N)
//	csmbench -fig2            Figure 2 scenario (K=2 machines, minimal cluster)
//	csmbench -fig3            Figure 3 trace (coded state, erroneous g, RS correction)
//	csmbench -fig4            Figure 4 (delegated coding round with proof verification)
//	csmbench -fig5            Figure 5 (INTERMIX interactive fraud localization)
//	csmbench -random-alloc    Section 7 (random allocation vs dynamic adversary)
//	csmbench -all             everything
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"codedsm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("csmbench", flag.ContinueOnError)
	var (
		table1      = fs.Bool("table1", false, "regenerate Table 1")
		table2      = fs.Bool("table2", false, "regenerate Table 2")
		scaling     = fs.Bool("scaling", false, "regenerate the Theorem 1 scaling series")
		fig2        = fs.Bool("fig2", false, "run the Figure 2 scenario")
		fig3        = fs.Bool("fig3", false, "trace the Figure 3 coded execution")
		fig4        = fs.Bool("fig4", false, "run the Figure 4 delegated round")
		fig5        = fs.Bool("fig5", false, "run the Figure 5 INTERMIX localization")
		randomAlloc = fs.Bool("random-alloc", false, "run the Section 7 random-allocation comparison")
		coding      = fs.Bool("coding", false, "run the Section 6.2 coding-cost ablation")
		all         = fs.Bool("all", false, "run every experiment")
		n           = fs.Int("n", 24, "network size for Table 1 (must make K=N/3 integral at mu=1/3, d=1)")
		rounds      = fs.Int("rounds", 3, "measured rounds per experiment")
		seed        = fs.Uint64("seed", 2019, "experiment seed")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "execution-phase worker goroutines per cluster (results are identical for any value)")
		pipeline    = fs.Int("pipeline", 0, "pipelined-engine depth for the measured CSM clusters (0: sequential engine)")
		batch       = fs.Int("batch", 1, "rounds per consensus instance for the measured clusters (command batching)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	any := false
	runIf := func(enabled bool, name string, f func() error) error {
		if !enabled && !*all {
			return nil
		}
		any = true
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
		return nil
	}
	steps := []struct {
		enabled bool
		name    string
		f       func() error
	}{
		{*table1, "Table 1: scheme comparison", func() error { return runTable1(*n, *rounds, *seed, *workers, *batch, *pipeline) }},
		{*table2, "Table 2: fault thresholds", func() error { return runTable2(*seed) }},
		{*scaling, "Theorem 1: scaling series", func() error { return runScaling(*rounds, *seed, *workers, *batch, *pipeline) }},
		{*fig2, "Figure 2: K=2 machines, minimal cluster", func() error { return runFig2(*seed) }},
		{*fig3, "Figure 3: coded execution trace", runFig3},
		{*fig4, "Figure 4: delegated coding round", runFig4},
		{*fig5, "Figure 5: INTERMIX fraud localization", runFig5},
		{*randomAlloc, "Section 7: random allocation vs adversaries", func() error { return runRandomAlloc(*seed) }},
		{*coding, "Section 6.2: coding-cost ablation (naive vs fast)", func() error { return runCoding(*seed) }},
	}
	for _, s := range steps {
		if err := runIf(s.enabled, s.name, s.f); err != nil {
			return err
		}
	}
	if !any {
		fs.Usage()
	}
	return nil
}

func runTable1(n, rounds int, seed uint64, workers, batch, pipeline int) error {
	rows, err := codedsm.Table1(codedsm.Table1Config{
		N: n, Mu: 1.0 / 3.0, D: 1, Rounds: rounds, Seed: seed,
		Parallelism: workers, BatchSize: batch, Pipeline: pipeline,
	})
	if err != nil {
		return err
	}
	fmt.Print(codedsm.RenderTable1(rows))
	fmt.Println("\n(µ = 1/3, d = 1; CSM row measured with b = µN wrong-result nodes injected.)")
	return nil
}

func runTable2(seed uint64) error {
	for _, tc := range []struct{ n, k, d int }{{20, 3, 2}, {31, 4, 3}, {24, 8, 1}} {
		rows, err := codedsm.Table2(tc.n, tc.k, tc.d, seed)
		if err != nil {
			return err
		}
		fmt.Printf("N=%d K=%d d=%d\n%s\n", tc.n, tc.k, tc.d, codedsm.RenderTable2(rows))
	}
	return nil
}

func runScaling(rounds int, seed uint64, workers, batch, pipeline int) error {
	rows, err := codedsm.ScalingSeries(codedsm.ScalingConfig{
		Ns: []int{12, 24, 48, 96}, Mu: 1.0 / 3.0, D: 1, Rounds: rounds, Seed: seed,
		Parallelism: workers, BatchSize: batch, Pipeline: pipeline,
	})
	if err != nil {
		return err
	}
	fmt.Print(codedsm.RenderScaling(rows))
	fmt.Println("\n(γ = K and β = b both grow linearly in N while every round stays correct — Theorem 1.)")
	return nil
}
