package lint

import (
	"go/ast"
	"go/types"
)

// DetSource flags reads of nondeterministic sources — the wall clock
// and unseeded randomness — in deterministic-engine code. The engines
// must be pure functions of (config, seed, inputs): PR 3's DelayFn bug
// showed how a single stray draw shifts the seeded RNG stream and
// silently forks two "identical" runs. Randomness must come from the
// *rand.Rand threaded through the config; time must come from the
// simulated schedule. Test files, cmd/, and examples/ are exempt, as
// are the OS-process harness and metrics packages, which legitimately
// live on the wall clock.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc: "flag time.Now/Since/Until, global math/rand and math/rand/v2 draws, and " +
		"crypto/rand reads in deterministic-engine code; use the seeded *rand.Rand from " +
		"the config, or annotate //csmlint:allow detsource(reason)",
	Run: runDetSource,
}

// mathRandConstructors are the math/rand and math/rand/v2 top-level
// functions that build explicitly seeded generators — the compliant
// pattern, not a draw from the global source.
var mathRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

// wallClockFuncs are the time package functions that read the wall
// clock. Construction (time.Duration arithmetic, time.Unix) and timers
// are not flagged; deadline plumbing around real I/O carries
// annotations instead.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetSource(pass *Pass) error {
	if !inDeterministicScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := importedPackage(pass, sel)
			if pkg == nil {
				return true
			}
			name := sel.Sel.Name
			switch pkg.Path() {
			case "time":
				if wallClockFuncs[name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in deterministic-engine code; derive time from the simulated schedule or annotate //csmlint:allow detsource(reason)",
						name)
				}
			case "math/rand", "math/rand/v2":
				if !mathRandConstructors[name] && isFunc(pass, sel) {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global RNG; use the seeded *rand.Rand threaded through the config",
						pkg.Name(), name)
				}
			case "crypto/rand":
				// Any use — rand.Read, rand.Int, or the rand.Reader
				// variable — injects OS entropy into the run.
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is a nondeterministic entropy source; deterministic-engine code must use the seeded *rand.Rand",
					name)
			}
			return true
		})
	}
	return nil
}

// importedPackage resolves sel's qualifier to a package if the
// selector is a package-level reference (pkg.Name), not a field or
// method access.
func importedPackage(pass *Pass, sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pkgName.Imported()
}

// isFunc reports whether the selected package member is a function
// (so math/rand/v2 type names like rand.Zipf pass through unflagged).
func isFunc(pass *Pass, sel *ast.SelectorExpr) bool {
	obj := pass.Info.Uses[sel.Sel]
	_, ok := obj.(*types.Func)
	return ok
}
