package poly

import (
	"fmt"

	"codedsm/internal/field"
)

// SubproductTree is the binary tree of partial products
// prod_{i in range} (z - points[i]) used for quasilinear multi-point
// evaluation and interpolation (von zur Gathen & Gerhard, ch. 10). Building
// it costs O(M(n) log n) where M is the multiplication cost; with the NTT
// this is O(n log^2 n), matching the per-worker coding complexity the paper
// claims in Section 6.2.
type SubproductTree[E comparable] struct {
	ring   *Ring[E]
	points []E
	root   *treeNode[E]
}

type treeNode[E comparable] struct {
	prod        Poly[E] // prod_{i=lo..hi-1} (z - points[i])
	left, right *treeNode[E]
	lo, hi      int
}

// NewSubproductTree builds the subproduct tree over the given points.
func NewSubproductTree[E comparable](ring *Ring[E], points []E) *SubproductTree[E] {
	t := &SubproductTree[E]{ring: ring, points: points}
	if len(points) > 0 {
		t.root = t.build(0, len(points))
	}
	return t
}

func (t *SubproductTree[E]) build(lo, hi int) *treeNode[E] {
	n := &treeNode[E]{lo: lo, hi: hi}
	if hi-lo == 1 {
		n.prod = Poly[E]{t.ring.f.Neg(t.points[lo]), t.ring.f.One()}
		return n
	}
	mid := (lo + hi) / 2
	n.left = t.build(lo, mid)
	n.right = t.build(mid, hi)
	n.prod = t.ring.Mul(n.left.prod, n.right.prod)
	return n
}

// Master returns prod_i (z - points[i]).
func (t *SubproductTree[E]) Master() Poly[E] {
	if t.root == nil {
		return Poly[E]{t.ring.f.One()}
	}
	return t.root.prod
}

// Points returns the evaluation points the tree was built over.
func (t *SubproductTree[E]) Points() []E { return t.points }

// EvalMany evaluates p at every tree point by remainder descent:
// O(M(n) log n) instead of Horner's O(n deg p).
func (t *SubproductTree[E]) EvalMany(p Poly[E]) ([]E, error) {
	out := make([]E, len(t.points))
	if t.root == nil {
		return out, nil
	}
	rem, err := t.ring.Mod(p, t.root.prod)
	if err != nil {
		return nil, err
	}
	if err := t.evalDown(t.root, rem, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *SubproductTree[E]) evalDown(n *treeNode[E], p Poly[E], out []E) error {
	if n.hi-n.lo == 1 {
		// p has degree 0 after reduction mod (z - x); its constant term is
		// p(x).
		if len(p) == 0 {
			out[n.lo] = t.ring.f.Zero()
		} else {
			out[n.lo] = p[0]
		}
		return nil
	}
	pl, err := t.ring.Mod(p, n.left.prod)
	if err != nil {
		return err
	}
	pr, err := t.ring.Mod(p, n.right.prod)
	if err != nil {
		return err
	}
	if err := t.evalDown(n.left, pl, out); err != nil {
		return err
	}
	return t.evalDown(n.right, pr, out)
}

// Interpolate returns the unique polynomial of degree < n through
// (points[i], ys[i]) using the tree: weights from the derivative of the
// master polynomial, then a bottom-up linear combination. O(M(n) log n).
func (t *SubproductTree[E]) Interpolate(ys []E) (Poly[E], error) {
	if len(ys) != len(t.points) {
		return nil, fmt.Errorf("poly: fast interpolate: %d values for %d points: %w", len(ys), len(t.points), ErrDegreeMismatch)
	}
	if t.root == nil {
		return nil, nil
	}
	// m'(x_i) = prod_{j != i} (x_i - x_j); nonzero iff points distinct.
	deriv := t.ring.Derivative(t.Master())
	derivVals, err := t.EvalMany(deriv)
	if err != nil {
		return nil, err
	}
	invs, err := field.BatchInv(t.ring.f, derivVals)
	if err != nil {
		return nil, fmt.Errorf("poly: fast interpolate: duplicate points: %w", err)
	}
	weights := make([]E, len(ys))
	for i := range ys {
		weights[i] = t.ring.f.Mul(ys[i], invs[i])
	}
	return t.combine(t.root, weights), nil
}

// combine computes sum_{i in node range} weights[i] * prod_{j != i, j in
// range} (z - points[j]) recursively:
// combine(node) = combine(left)*right.prod + combine(right)*left.prod.
func (t *SubproductTree[E]) combine(n *treeNode[E], weights []E) Poly[E] {
	if n.hi-n.lo == 1 {
		return t.ring.Constant(weights[n.lo])
	}
	l := t.combine(n.left, weights)
	r := t.combine(n.right, weights)
	return t.ring.Add(t.ring.Mul(l, n.right.prod), t.ring.Mul(r, n.left.prod))
}

// FastEvalMany is a convenience wrapper: build a tree over xs and evaluate.
func (r *Ring[E]) FastEvalMany(p Poly[E], xs []E) ([]E, error) {
	return NewSubproductTree(r, xs).EvalMany(p)
}

// FastInterpolate is a convenience wrapper: build a tree over xs and
// interpolate ys.
func (r *Ring[E]) FastInterpolate(xs, ys []E) (Poly[E], error) {
	return NewSubproductTree(r, xs).Interpolate(ys)
}
