// Machine-state handoff: the cluster-level primitives the shard router
// (internal/shard) builds its rebalancing on. Migrating a machine
// between two clusters is a coded read on the source — reconstruct the
// machine's state from the nodes' coded shares, correcting up to the
// fault budget like any round decode — followed by a coded write on the
// target: installing one machine's state is a rank-1 update of every
// node's share, S̃_i += l_k(α_i)·(new − old), because the Lagrange
// encode is linear in the per-machine states. Neither side ever
// materializes the other K−1 machines' states, which is what keeps the
// handoff at repair cost (per-node O(state), like lcc.RepairShare)
// instead of a full decode + re-encode of the cluster.
package csm

import (
	"fmt"

	"codedsm/internal/field"
)

// DecodeMachineState reconstructs machine k's current state from the
// nodes' coded shares. Crashed and recovering nodes contribute nothing
// (erasures); Byzantine nodes contribute garbage, which the
// Reed-Solomon decode corrects like an execution-phase error — the
// coded read tolerates exactly the fault pattern the cluster is sized
// for. The cluster must not have an open ingress client (the scheduler
// owns it between Open and Close).
func (c *Cluster[E]) DecodeMachineState(k int) ([]E, error) {
	if k < 0 || k >= c.cfg.K {
		return nil, fmt.Errorf("csm: decode machine state: machine %d out of range [0,%d)", k, c.cfg.K)
	}
	if err := c.requireNoClient("decode machine state"); err != nil {
		return nil, err
	}
	stateLen := c.tr.StateLen()
	indices := make([]int, 0, c.cfg.N)
	contributions := make([][]E, 0, c.cfg.N)
	for j, n := range c.nodes {
		if n.behavior == Crashed || n.behavior == Recovering {
			continue
		}
		indices = append(indices, j)
		if n.behavior != Honest {
			contributions = append(contributions, field.RandVec(c.cfg.BaseField, c.rng, stateLen))
			continue
		}
		contributions = append(contributions, n.codedState)
	}
	// The coded states encode the K state vectors at degree 1 (the
	// encoding polynomial u_t itself, not a transition image).
	dec, err := c.code.DecodeOutputsSubsetParallel(indices, contributions, 1, c.cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("csm: decode machine %d state: %w", k, err)
	}
	return append([]E(nil), dec.Outputs[k]...), nil
}

// AdoptMachineState replaces machine k's state with the given vector
// (copied): the oracle machine adopts it and every reachable node
// applies the rank-1 Lagrange share update S̃_i += l_k(α_i)·(new − old).
// Crashed and recovering nodes are skipped — their share is already
// lost, and a later Rejoin repairs it from the updated survivors via
// lcc.RepairShare, so the churn machinery composes with adoption
// unchanged. On a durable cluster a forced snapshot records the adopted
// state (the adoption is not a consensus decision, so it must not hide
// between WAL batches). The cluster must not have an open ingress
// client.
func (c *Cluster[E]) AdoptMachineState(k int, state []E) error {
	if k < 0 || k >= c.cfg.K {
		return fmt.Errorf("csm: adopt machine state: machine %d out of range [0,%d)", k, c.cfg.K)
	}
	if len(state) != c.tr.StateLen() {
		return fmt.Errorf("csm: adopt machine %d state: length %d, want %d", k, len(state), c.tr.StateLen())
	}
	if err := c.requireNoClient("adopt machine state"); err != nil {
		return err
	}
	old := c.oracle[k].State()
	if err := c.oracle[k].SetState(state); err != nil {
		return fmt.Errorf("csm: adopt machine %d state: %w", k, err)
	}
	delta := make([]E, len(state))
	c.bulk.SubVec(delta, state, old)
	coeffs := c.code.Coeffs()
	for i, n := range c.nodes {
		if n.behavior == Crashed || n.behavior == Recovering {
			continue
		}
		c.bulk.ScaleAccVec(n.codedState, coeffs[i][k], delta)
	}
	if c.dur != nil {
		if err := c.snapshotDur(); err != nil {
			return fmt.Errorf("csm: adopt machine %d state: snapshot: %w", k, err)
		}
	}
	return nil
}

// requireNoClient fails the named operation while an ingress client is
// open: between Open and Close the scheduler goroutine owns the
// cluster, so direct state access would race it.
func (c *Cluster[E]) requireNoClient(op string) error {
	c.clientMu.Lock()
	defer c.clientMu.Unlock()
	if c.clientOpen {
		return fmt.Errorf("csm: %s: %w", op, ErrClientOpen)
	}
	return nil
}
