package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot files are named snap-<seq>.snap with seq in fixed-width hex
// so lexical order is numeric order. Layout:
//
//	[8]byte    snapMagic
//	uint64 LE  sequence number
//	uint32 LE  payload length
//	uint32 LE  CRC-32C over payload
//	[]byte     payload
//
// A snapshot is written to a .tmp sibling, fsynced, renamed into place,
// and the directory fsynced — so a crash leaves either the old set or
// the old set plus one complete new file, never a half-written .snap.

var snapMagic = [8]byte{'C', 'S', 'M', 'S', 'N', 'P', '1', '\n'}

const snapHdrLen = 8 + 8 + 4 + 4

// MaxSnapshot caps a snapshot payload; a file claiming more is corrupt.
const MaxSnapshot = 256 << 20

// ErrNoSnapshot is returned by LoadSnapshot when the directory holds no
// valid snapshot.
var ErrNoSnapshot = errors.New("wal: no valid snapshot")

// SnapshotName returns the file name for snapshot generation seq.
func SnapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%016x.snap", seq)
}

// SegmentName returns the WAL segment file name paired with snapshot
// generation seq: records appended after that snapshot was taken.
func SegmentName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.log", seq)
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// WriteSnapshot atomically writes snapshot generation seq into dir and
// prunes older generations, keeping the previous one as a fallback for
// crashes during rotation. The previous generation's WAL segment is
// kept on the same schedule; anything older is removed.
func WriteSnapshot(dir string, seq uint64, payload []byte) error {
	if len(payload) > MaxSnapshot {
		return ErrTooLarge
	}
	buf := make([]byte, snapHdrLen+len(payload))
	copy(buf, snapMagic[:])
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(payload, castagnoli))
	copy(buf[snapHdrLen:], payload)

	final := filepath.Join(dir, SnapshotName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	fire(CrashSnapshotTemp)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	fire(CrashSnapshotRenamed)
	return pruneGenerations(dir, seq)
}

// LoadSnapshot returns the newest valid snapshot in dir. Torn, corrupt,
// or foreign files are skipped so a crash mid-rotation falls back to
// the previous generation; ErrNoSnapshot means a cold start.
func LoadSnapshot(dir string) (seq uint64, payload []byte, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // fixed-width hex: lexical == numeric
	for i := len(names) - 1; i >= 0; i-- {
		s, p, ok := readSnapshot(filepath.Join(dir, names[i]))
		if ok {
			return s, p, nil
		}
	}
	return 0, nil, ErrNoSnapshot
}

func readSnapshot(path string) (seq uint64, payload []byte, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < snapHdrLen {
		return 0, nil, false
	}
	if [8]byte(data[:8]) != snapMagic {
		return 0, nil, false
	}
	seq = binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint32(data[16:20])
	sum := binary.LittleEndian.Uint32(data[20:24])
	if n > MaxSnapshot || int64(len(data)) != int64(snapHdrLen)+int64(n) {
		return 0, nil, false
	}
	payload = data[snapHdrLen:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return 0, nil, false
	}
	return seq, payload, true
}

// pruneGenerations removes snapshots and WAL segments older than
// generation keep-1, plus any stale .tmp leftovers.
func pruneGenerations(dir string, keep uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		var ok bool
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
			continue
		case strings.HasSuffix(name, ".snap"):
			seq, ok = parseSeq(name, "snap-", ".snap")
		case strings.HasSuffix(name, ".log"):
			seq, ok = parseSeq(name, "wal-", ".log")
		}
		if ok && seq+1 < keep {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
