module codedsm

go 1.24
